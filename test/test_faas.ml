(* Tests for horse_faas: function registry, warm pools, the four
   start modes, keep-alive, preemption injection and metrics. *)

module Engine = Horse_sim.Engine
module Time = Horse_sim.Time_ns
module Metrics = Horse_sim.Metrics
module Topology = Horse_cpu.Topology
module Platform = Horse_faas.Platform
module Function_def = Horse_faas.Function_def
module Sandbox = Horse_vmm.Sandbox
module Category = Horse_workload.Category

let small_topology = Topology.create ~sockets:1 ~cores_per_socket:8 ()

let fresh ?(keep_alive = Time.span_s 600.0) ?(seed = 11) () =
  let engine = Engine.create ~seed () in
  let platform =
    Platform.create ~topology:small_topology ~keep_alive ~jitter:0.0 ~seed
      ~engine ()
  in
  (engine, platform)

let register_nat ?(vcpus = 1) platform =
  Platform.register platform
    (Function_def.create ~name:"nat" ~vcpus ~memory_mb:512
       ~exec:(Function_def.Ull Category.Cat2) ())

let ns_of = Time.span_to_ns

(* ------------------------------------------------------------------ *)
(* Function definitions                                                *)
(* ------------------------------------------------------------------ *)

let test_function_def_defaults () =
  let ull_fn =
    Function_def.create ~name:"f" ~vcpus:1 ~memory_mb:128
      ~exec:(Function_def.Ull Category.Cat1) ()
  in
  Alcotest.(check bool) "ull by default for Ull" true ull_fn.Function_def.ull;
  let fixed_fn =
    Function_def.create ~name:"g" ~vcpus:1 ~memory_mb:128
      ~exec:(Function_def.Fixed (Time.span_ms 1.0)) ()
  in
  Alcotest.(check bool) "not ull for Fixed" false fixed_fn.Function_def.ull;
  Alcotest.check_raises "bad vcpus"
    (Invalid_argument "Function_def.create: vcpus must be positive") (fun () ->
      ignore
        (Function_def.create ~name:"h" ~vcpus:0 ~memory_mb:128
           ~exec:(Function_def.Ull Category.Cat1) ()))

let test_sample_exec_models () =
  let rng = Horse_sim.Rng.create ~seed:1 in
  let fixed =
    Function_def.create ~name:"f" ~vcpus:1 ~memory_mb:128
      ~exec:(Function_def.Fixed (Time.span_us 5.0)) ()
  in
  Alcotest.(check int) "fixed" 5_000
    (ns_of (Function_def.sample_exec fixed rng));
  let sampled =
    Function_def.create ~name:"s" ~vcpus:1 ~memory_mb:128
      ~exec:(Function_def.Sampled (fun _ -> Time.span_us 9.0)) ()
  in
  Alcotest.(check int) "sampled" 9_000
    (ns_of (Function_def.sample_exec sampled rng))

(* ------------------------------------------------------------------ *)
(* Registry & pools                                                    *)
(* ------------------------------------------------------------------ *)

let test_register_twice_rejected () =
  let _, platform = fresh () in
  register_nat platform;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Platform.register: nat already registered") (fun () ->
      register_nat platform)

let test_unknown_function () =
  let _, platform = fresh () in
  (match Platform.trigger platform ~name:"ghost" ~mode:Platform.Cold () with
  | () -> Alcotest.fail "accepted unknown function"
  | exception Platform.Unknown_function "ghost" -> ());
  match Platform.provision platform ~name:"ghost" ~count:1 ~strategy:Sandbox.Horse with
  | () -> Alcotest.fail "provisioned unknown function"
  | exception Platform.Unknown_function "ghost" -> ()

let test_provision_fills_pool () =
  let _, platform = fresh () in
  register_nat platform;
  Alcotest.(check int) "empty" 0 (Platform.pool_size platform ~name:"nat");
  Platform.provision platform ~name:"nat" ~count:3 ~strategy:Sandbox.Horse;
  Alcotest.(check int) "three" 3 (Platform.pool_size platform ~name:"nat")

let test_warm_without_pool_raises () =
  let _, platform = fresh () in
  register_nat platform;
  match
    Platform.trigger platform ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse) ()
  with
  | () -> Alcotest.fail "warm trigger without pool"
  | exception Platform.No_warm_sandbox "nat" -> ()

(* ------------------------------------------------------------------ *)
(* Start modes                                                         *)
(* ------------------------------------------------------------------ *)

let run_one platform engine ~name ~mode =
  let result = ref None in
  Platform.trigger platform ~name ~mode
    ~on_complete:(fun record -> result := Some record)
    ();
  Engine.run engine;
  Option.get !result

let test_cold_start_latency () =
  let engine, platform = fresh () in
  register_nat platform;
  let r = run_one platform engine ~name:"nat" ~mode:Platform.Cold in
  Alcotest.(check bool) "~1.5s init" true
    (ns_of r.Platform.init > 1_400_000_000);
  Alcotest.(check bool) "exec ~1.5us" true
    (ns_of r.Platform.exec > 1_000 && ns_of r.Platform.exec < 2_000)

let test_restore_start_latency () =
  let engine, platform = fresh () in
  register_nat platform;
  let r = run_one platform engine ~name:"nat" ~mode:Platform.Restore in
  Alcotest.(check bool) "~1.3ms init" true
    (ns_of r.Platform.init > 1_000_000 && ns_of r.Platform.init < 2_000_000)

let test_warm_vanilla_vs_horse_init () =
  let engine, platform = fresh () in
  register_nat platform;
  Platform.provision platform ~name:"nat" ~count:1 ~strategy:Sandbox.Vanilla;
  Platform.provision platform ~name:"nat" ~count:1 ~strategy:Sandbox.Horse;
  let vanilla =
    run_one platform engine ~name:"nat" ~mode:(Platform.Warm Sandbox.Vanilla)
  in
  let horse =
    run_one platform engine ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse)
  in
  (* warm = dispatch (~540ns) + vanilla resume (~560ns) ~ 1.1us *)
  Alcotest.(check bool) "warm ~1.1us" true
    (ns_of vanilla.Platform.init > 1_000 && ns_of vanilla.Platform.init < 1_250);
  (* horse = fast path, no dispatch: ~147ns *)
  Alcotest.(check bool) "horse ~150ns" true
    (ns_of horse.Platform.init > 130 && ns_of horse.Platform.init < 170)

let test_warm_sandbox_returns_to_pool () =
  let engine, platform = fresh () in
  register_nat platform;
  Platform.provision platform ~name:"nat" ~count:1 ~strategy:Sandbox.Horse;
  for _ = 1 to 5 do
    ignore (run_one platform engine ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse))
  done;
  Alcotest.(check int) "pool restored" 1 (Platform.pool_size platform ~name:"nat");
  Alcotest.(check int) "five resumes" 5
    (Metrics.counter (Platform.metrics platform) "vmm.resumes.horse")

let test_records_accumulate () =
  let engine, platform = fresh () in
  register_nat platform;
  Platform.provision platform ~name:"nat" ~count:3 ~strategy:Sandbox.Horse;
  for _ = 1 to 3 do
    Platform.trigger platform ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse) ()
  done;
  Alcotest.(check int) "live before run" 3 (Platform.live_invocations platform);
  Engine.run engine;
  Alcotest.(check int) "live drained" 0 (Platform.live_invocations platform);
  Alcotest.(check int) "records" 3 (List.length (Platform.records platform))

let test_concurrent_warm_pool_exhaustion () =
  let _, platform = fresh () in
  register_nat platform;
  Platform.provision platform ~name:"nat" ~count:2 ~strategy:Sandbox.Horse;
  Platform.trigger platform ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse) ();
  Platform.trigger platform ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse) ();
  match
    Platform.trigger platform ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse) ()
  with
  | () -> Alcotest.fail "third concurrent warm trigger should fail"
  | exception Platform.No_warm_sandbox "nat" -> ()

(* ------------------------------------------------------------------ *)
(* Keep-alive                                                          *)
(* ------------------------------------------------------------------ *)

let test_keep_alive_expiry () =
  let engine, platform = fresh ~keep_alive:(Time.span_s 5.0) () in
  register_nat platform;
  Platform.trigger platform ~name:"nat" ~mode:Platform.Cold ();
  (* cold start completes around 1.5s; the pause into the pool happens
     then, the expiry only 5s later *)
  Engine.run ~until:(Time.of_ns 3_000_000_000) engine;
  Alcotest.(check int) "pooled after cold" 1
    (Platform.pool_size platform ~name:"nat");
  Engine.run engine;
  (* the expiry event fired 5s later and reclaimed it *)
  Alcotest.(check int) "expired" 0 (Platform.pool_size platform ~name:"nat");
  Alcotest.(check int) "one expiry" 1
    (Metrics.counter (Platform.metrics platform) "platform.keepalive_expiries")

let test_keep_alive_reuse_prevents_expiry () =
  let engine, platform = fresh ~keep_alive:(Time.span_s 5.0) () in
  register_nat platform;
  Platform.trigger platform ~name:"nat" ~mode:Platform.Cold ();
  (* reuse the pooled sandbox within the window (cold completes ~1.5s) *)
  ignore
    (Engine.schedule engine ~after:(Time.span_s 3.0) (fun _ ->
         Platform.trigger platform ~name:"nat"
           ~mode:(Platform.Warm Sandbox.Vanilla) ()));
  Engine.run engine;
  Alcotest.(check int) "warm hit" 1
    (Metrics.counter (Platform.metrics platform) "vmm.resumes.vanil")

(* ------------------------------------------------------------------ *)
(* Preemption injection                                                *)
(* ------------------------------------------------------------------ *)

let test_preemption_extends_running_invocation () =
  (* Deterministic setup: a long function occupies CPUs; many HORSE
     resumes fire while it runs; with a 8-CPU box and enough resumes
     some merge thread must land on its CPUs. *)
  let engine, platform = fresh ~seed:5 () in
  Platform.register platform
    (Function_def.create ~name:"long" ~vcpus:4 ~memory_mb:1024
       ~exec:(Function_def.Fixed (Time.span_ms 50.0)) ());
  register_nat platform ~vcpus:4;
  Platform.provision platform ~name:"nat" ~count:1 ~strategy:Sandbox.Horse;
  let long_record = ref None in
  Platform.trigger platform ~name:"long" ~mode:Platform.Cold
    ~on_complete:(fun r -> long_record := Some r)
    ();
  for i = 1 to 200 do
    ignore
      (Engine.schedule engine
         ~after:(Time.span_us (float_of_int i *. 100.0))
         (fun _ ->
           match
             Platform.trigger platform ~name:"nat"
               ~mode:(Platform.Warm Sandbox.Horse) ()
           with
           | () -> ()
           | exception Platform.No_warm_sandbox _ -> ()))
  done;
  Engine.run engine;
  let r = Option.get !long_record in
  let preemptions =
    Metrics.counter (Platform.metrics platform) "platform.preemptions"
  in
  Alcotest.(check bool) "some preemptions happened" true (preemptions > 0);
  Alcotest.(check bool) "delay recorded on the long function" true
    (ns_of r.Platform.preemption > 0);
  Alcotest.(check int) "total includes the delay"
    (ns_of r.Platform.init + ns_of r.Platform.exec + ns_of r.Platform.preemption)
    (ns_of (Platform.record_total r))

let test_no_preemption_under_vanilla () =
  let engine, platform = fresh ~seed:5 () in
  Platform.register platform
    (Function_def.create ~name:"long" ~vcpus:4 ~memory_mb:1024
       ~exec:(Function_def.Fixed (Time.span_ms 50.0)) ());
  register_nat platform ~vcpus:4;
  Platform.provision platform ~name:"nat" ~count:1 ~strategy:Sandbox.Vanilla;
  Platform.trigger platform ~name:"long" ~mode:Platform.Cold ();
  for i = 1 to 200 do
    ignore
      (Engine.schedule engine
         ~after:(Time.span_us (float_of_int i *. 100.0))
         (fun _ ->
           match
             Platform.trigger platform ~name:"nat"
               ~mode:(Platform.Warm Sandbox.Vanilla) ()
           with
           | () -> ()
           | exception Platform.No_warm_sandbox _ -> ()))
  done;
  Engine.run engine;
  Alcotest.(check int) "no preemptions on the vanilla path" 0
    (Metrics.counter (Platform.metrics platform) "platform.preemptions")

(* ------------------------------------------------------------------ *)
(* Keep-alive policies                                                 *)
(* ------------------------------------------------------------------ *)

module Keepalive = Horse_faas.Keepalive

let minutes m = Time.span_s (60.0 *. m)

let test_fixed_policy_recommendation () =
  let t = Keepalive.create (Keepalive.Fixed (minutes 10.0)) in
  Alcotest.(check int) "constant" (Time.span_to_ns (minutes 10.0))
    (Time.span_to_ns (Keepalive.recommendation t));
  Keepalive.note_arrival t ~at:(Time.of_ns 0);
  Keepalive.note_arrival t ~at:(Time.of_ns 1_000_000_000);
  Alcotest.(check int) "still constant" (Time.span_to_ns (minutes 10.0))
    (Time.span_to_ns (Keepalive.recommendation t))

let test_histogram_policy_learns () =
  let t =
    Keepalive.create
      (Keepalive.Histogram { percentile = 99.0; cap = minutes 240.0 })
  in
  (* before any history, the cap applies *)
  Alcotest.(check int) "cap initially" (Time.span_to_ns (minutes 240.0))
    (Time.span_to_ns (Keepalive.recommendation t));
  (* feed arrivals exactly 2 minutes apart *)
  for i = 0 to 20 do
    Keepalive.note_arrival t
      ~at:(Time.add Time.zero (Time.scale_span i (minutes 2.0)))
  done;
  (* p99 of the gaps sits in the 2-minute bucket: keep alive 3 min *)
  Alcotest.(check int) "three minutes" (Time.span_to_ns (minutes 3.0))
    (Time.span_to_ns (Keepalive.recommendation t))

let test_histogram_cap_applies () =
  let t =
    Keepalive.create
      (Keepalive.Histogram { percentile = 99.0; cap = minutes 5.0 })
  in
  for i = 0 to 5 do
    Keepalive.note_arrival t
      ~at:(Time.add Time.zero (Time.scale_span i (minutes 100.0)))
  done;
  Alcotest.(check int) "capped" (Time.span_to_ns (minutes 5.0))
    (Time.span_to_ns (Keepalive.recommendation t))

let test_policy_validation () =
  Alcotest.check_raises "bad percentile"
    (Invalid_argument "Keepalive.create: percentile outside (0, 100]")
    (fun () ->
      ignore
        (Keepalive.create
           (Keepalive.Histogram { percentile = 0.0; cap = minutes 1.0 })));
  let t = Keepalive.create (Keepalive.Fixed (minutes 1.0)) in
  Keepalive.note_arrival t ~at:(Time.of_ns 100);
  Alcotest.check_raises "regression"
    (Invalid_argument "Keepalive.note_arrival: clock went backwards")
    (fun () -> Keepalive.note_arrival t ~at:(Time.of_ns 50))

let test_evaluate_fixed () =
  (* gaps of 1 minute against a 10-minute window: all warm but the first *)
  let arrivals = List.init 10 (fun i -> Time.scale_span i (minutes 1.0)) in
  let e = Keepalive.evaluate (Keepalive.Fixed (minutes 10.0)) ~arrivals in
  Alcotest.(check int) "invocations" 10 e.Keepalive.invocations;
  Alcotest.(check int) "one cold" 1 e.Keepalive.cold_starts;
  Alcotest.(check int) "nine warm" 9 e.Keepalive.warm_hits;
  Alcotest.(check (float 1e-9)) "rate" 0.9 (Keepalive.warm_hit_rate e)

let test_evaluate_short_window_all_cold () =
  let arrivals = List.init 5 (fun i -> Time.scale_span i (minutes 30.0)) in
  let e = Keepalive.evaluate (Keepalive.Fixed (minutes 1.0)) ~arrivals in
  Alcotest.(check int) "all cold" 5 e.Keepalive.cold_starts;
  Alcotest.(check int) "no warm" 0 e.Keepalive.warm_hits

let test_evaluate_cost_tradeoff () =
  (* sparse arrivals: the histogram policy should pay less warm-pool
     time than a long fixed window at a comparable hit rate *)
  let arrivals = List.init 60 (fun i -> Time.scale_span i (minutes 2.0)) in
  let fixed = Keepalive.evaluate (Keepalive.Fixed (minutes 60.0)) ~arrivals in
  let histogram =
    Keepalive.evaluate
      (Keepalive.Histogram { percentile = 99.0; cap = minutes 60.0 })
      ~arrivals
  in
  Alcotest.(check bool) "hit rates comparable" true
    (Keepalive.warm_hit_rate histogram >= Keepalive.warm_hit_rate fixed -. 0.05);
  Alcotest.(check bool) "histogram pays less idle time" true
    (Time.span_to_ns histogram.Keepalive.warm_pool_span
    < Time.span_to_ns fixed.Keepalive.warm_pool_span)

let test_evaluate_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Keepalive.evaluate: arrivals not sorted") (fun () ->
      ignore
        (Keepalive.evaluate (Keepalive.Fixed (minutes 1.0))
           ~arrivals:[ minutes 5.0; minutes 1.0 ]))

(* ------------------------------------------------------------------ *)
(* Energy / DVFS integration                                           *)
(* ------------------------------------------------------------------ *)

let test_platform_accounts_energy () =
  let engine, platform = fresh () in
  register_nat platform;
  Alcotest.(check (float 1e-9)) "starts at zero" 0.0
    (Horse_cpu.Energy.total_joules (Platform.energy platform));
  ignore (run_one platform engine ~name:"nat" ~mode:Platform.Cold);
  Alcotest.(check bool) "accounted something" true
    (Horse_cpu.Energy.total_joules (Platform.energy platform) > 0.0)

let test_governor_signal_identical_across_strategies () =
  (* the coalesced step-5 update must give schedutil the same signal *)
  let energy_of strategy =
    let engine = Engine.create ~seed:31 () in
    let platform =
      Platform.create ~topology:small_topology ~jitter:0.0 ~seed:31
        ~governor:Horse_cpu.Dvfs.Schedutil ~engine ()
    in
    register_nat platform;
    Platform.provision platform ~name:"nat" ~count:1 ~strategy;
    for _ = 1 to 20 do
      ignore (run_one platform engine ~name:"nat" ~mode:(Platform.Warm strategy))
    done;
    Horse_cpu.Energy.total_joules (Platform.energy platform)
  in
  Alcotest.(check (float 1e-9)) "vanilla == horse energy"
    (energy_of Sandbox.Vanilla) (energy_of Sandbox.Horse)

(* ------------------------------------------------------------------ *)
(* Autoscaler                                                          *)
(* ------------------------------------------------------------------ *)

module Autoscaler = Horse_faas.Autoscaler

let test_autoscaler_tracks_concurrency () =
  let a = Autoscaler.create () in
  Alcotest.(check int) "idle" 0 (Autoscaler.current_concurrency a);
  Autoscaler.note_start a ~at:(Time.of_ns 0);
  Autoscaler.note_start a ~at:(Time.of_ns 10);
  Alcotest.(check int) "two live" 2 (Autoscaler.current_concurrency a);
  Autoscaler.note_complete a ~at:(Time.of_ns 20);
  Alcotest.(check int) "one live" 1 (Autoscaler.current_concurrency a);
  Alcotest.check_raises "underflow"
    (Invalid_argument "Autoscaler.note_complete: no invocation outstanding")
    (fun () ->
      Autoscaler.note_complete a ~at:(Time.of_ns 30);
      Autoscaler.note_complete a ~at:(Time.of_ns 40))

let test_autoscaler_recommendation () =
  let a = Autoscaler.create ~headroom:1 () in
  (* no traffic yet: keep nothing warm *)
  Alcotest.(check int) "cold start" 0
    (Autoscaler.recommendation a ~at:(Time.of_ns 0));
  (* a burst of 5 concurrent invocations *)
  for i = 0 to 4 do
    Autoscaler.note_start a ~at:(Time.of_ns (i * 1000))
  done;
  for i = 0 to 4 do
    Autoscaler.note_complete a ~at:(Time.of_ns (10_000 + (i * 1000)))
  done;
  let rec_now = Autoscaler.recommendation a ~at:(Time.of_ns 20_000) in
  Alcotest.(check bool)
    (Printf.sprintf "burst remembered (%d)" rec_now)
    true (rec_now >= 5);
  (* after the window slides past the burst, scale back down *)
  let later = Time.of_ns (Time.span_to_ns (Time.span_s 120.0)) in
  Alcotest.(check int) "scaled down to headroom" 1
    (Autoscaler.recommendation a ~at:later)

let test_autoscaler_caps () =
  let a = Autoscaler.create ~max_pool:3 ~headroom:0 () in
  for i = 0 to 9 do
    Autoscaler.note_start a ~at:(Time.of_ns i)
  done;
  Alcotest.(check int) "capped" 3
    (Autoscaler.recommendation a ~at:(Time.of_ns 100))

let test_autoscaler_attached_to_platform () =
  let engine, platform = fresh () in
  register_nat platform;
  let a =
    Autoscaler.create ~window:(Time.span_s 10.0) ~headroom:1 ~percentile:99.0 ()
  in
  Autoscaler.attach a ~platform ~name:"nat" ~strategy:Sandbox.Horse
    ~interval:(Time.span_s 1.0)
    ~until:(Time.of_ns (Time.span_to_ns (Time.span_s 30.0)));
  (* traffic burst in the first 5 seconds: 4 concurrent long-ish calls *)
  Platform.register platform
    (Function_def.create ~name:"steady" ~vcpus:1 ~memory_mb:128
       ~exec:(Function_def.Fixed (Time.span_s 2.0)) ());
  for i = 0 to 3 do
    ignore
      (Engine.schedule engine
         ~after:(Time.span_ms (float_of_int i *. 100.0))
         (fun _ ->
           Autoscaler.note_start a ~at:(Engine.now engine);
           Platform.trigger platform ~name:"steady" ~mode:Platform.Cold
             ~on_complete:(fun _ ->
               Autoscaler.note_complete a ~at:(Engine.now engine))
             ()))
  done;
  Engine.run ~until:(Time.of_ns (Time.span_to_ns (Time.span_s 6.0))) engine;
  (* the reconciler saw 4 concurrent invocations: pool grew *)
  Alcotest.(check bool)
    (Printf.sprintf "scaled up (%d)" (Platform.pool_size platform ~name:"nat"))
    true
    (Platform.pool_size platform ~name:"nat" >= 4);
  Engine.run engine;
  (* burst long gone: the reconciler shrank the pool to headroom *)
  Alcotest.(check int) "scaled down" 1 (Platform.pool_size platform ~name:"nat")

let test_reclaim () =
  let _, platform = fresh () in
  register_nat platform;
  Platform.provision platform ~name:"nat" ~count:5 ~strategy:Sandbox.Horse;
  Alcotest.(check int) "reclaimed 2" 2 (Platform.reclaim platform ~name:"nat" ~count:2);
  Alcotest.(check int) "three left" 3 (Platform.pool_size platform ~name:"nat");
  Alcotest.(check int) "reclaim beyond pool" 3
    (Platform.reclaim platform ~name:"nat" ~count:10);
  Alcotest.(check int) "empty" 0 (Platform.pool_size platform ~name:"nat")

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)
(* ------------------------------------------------------------------ *)

module Cluster = Horse_faas.Cluster

let fresh_cluster ?(servers = 3) ?(routing = Cluster.Warm_first) ?policy ?e2e
    () =
  let engine = Engine.create ~seed:21 () in
  let cluster =
    Cluster.create ~servers ~routing ?policy ?e2e ~topology:small_topology
      ~seed:21 ~engine ()
  in
  Cluster.register cluster
    (Function_def.create ~name:"nat" ~vcpus:1 ~memory_mb:512
       ~exec:(Function_def.Ull Category.Cat2) ());
  (engine, cluster)

let test_cluster_create_and_register () =
  let _, cluster = fresh_cluster () in
  Alcotest.(check int) "3 servers" 3 (Cluster.server_count cluster);
  (* the function exists on every server: all three accept a cold start *)
  for i = 0 to 2 do
    Platform.trigger (Cluster.server cluster i) ~name:"nat" ~mode:Platform.Cold ()
  done;
  Alcotest.(check int) "three live" 3 (Cluster.live_invocations cluster);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Cluster.server: index out of range") (fun () ->
      ignore (Cluster.server cluster 99))

let test_cluster_provision_spreads () =
  let _, cluster = fresh_cluster () in
  Cluster.provision cluster ~name:"nat" ~total:7 ~strategy:Sandbox.Horse;
  Alcotest.(check int) "fleet pool" 7 (Cluster.pool_size cluster ~name:"nat");
  let sizes =
    List.init 3 (fun i ->
        Platform.pool_size (Cluster.server cluster i) ~name:"nat")
  in
  Alcotest.(check (list int)) "spread 3/2/2" [ 3; 2; 2 ] sizes

let accepted = function
  | Cluster.Accepted i -> i
  | Cluster.Rejected r ->
    Alcotest.failf "unexpected rejection: %s"
      (Cluster.reject_reason_name r.Cluster.reason)
  | Cluster.Queued -> Alcotest.fail "unexpected queueing"
  | Cluster.Forwarded _ -> Alcotest.fail "unexpected spill"

let test_cluster_round_robin () =
  let _, cluster = fresh_cluster ~routing:Cluster.Round_robin () in
  let picks =
    List.init 6 (fun _ ->
        accepted (Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold ()))
  in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2 ] picks

let test_cluster_least_loaded () =
  let _, cluster = fresh_cluster ~routing:Cluster.Least_loaded () in
  (* keep server 0 busy, the router must avoid it *)
  let first =
    accepted (Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold ())
  in
  Alcotest.(check int) "first pick" 0 first;
  let second =
    accepted (Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold ())
  in
  Alcotest.(check bool) "avoids busy server" true (second <> 0)

let test_cluster_warm_first () =
  let engine, cluster = fresh_cluster ~routing:Cluster.Warm_first () in
  (* only server 1 gets a warm sandbox *)
  Platform.provision (Cluster.server cluster 1) ~name:"nat" ~count:1
    ~strategy:Sandbox.Horse;
  let pick =
    accepted
      (Cluster.trigger cluster ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse) ())
  in
  Alcotest.(check int) "routed to the warm server" 1 pick;
  Engine.run engine;
  Alcotest.(check int) "one completion" 1 (List.length (Cluster.records cluster))

let test_cluster_warm_exhausted_rejects () =
  (* a fleet-wide dry pool is a typed rejection, not an exception
     escaping the router *)
  let _, cluster = fresh_cluster ~routing:Cluster.Warm_first () in
  (match
     Cluster.trigger cluster ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse) ()
   with
  | Cluster.Accepted _ | Cluster.Queued | Cluster.Forwarded _ ->
    Alcotest.fail "dry fleet must reject"
  | Cluster.Rejected r ->
    Alcotest.(check string)
      "reason" "no-warm-capacity"
      (Cluster.reject_reason_name r.Cluster.reason);
    Alcotest.(check string) "function" "nat" r.Cluster.function_name);
  Alcotest.(check int) "recorded" 1 (List.length (Cluster.rejections cluster));
  Alcotest.(check int) "counted" 1
    (Horse_sim.Metrics.counter (Cluster.metrics cluster)
       "cluster.rejections.no-warm-capacity")

let test_cluster_all_down_rejects () =
  let _, cluster = fresh_cluster ~routing:Cluster.Round_robin () in
  for i = 0 to Cluster.server_count cluster - 1 do
    Cluster.mark_down cluster i
  done;
  Alcotest.(check int) "none healthy" 0 (Cluster.healthy_count cluster);
  (match Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold () with
  | Cluster.Accepted _ | Cluster.Queued | Cluster.Forwarded _ ->
    Alcotest.fail "downed fleet must reject"
  | Cluster.Rejected r ->
    Alcotest.(check string)
      "reason" "all-servers-down"
      (Cluster.reject_reason_name r.Cluster.reason));
  (* a recovered server takes traffic again *)
  Cluster.mark_up cluster 1;
  Alcotest.(check int) "routes to the healthy server" 1
    (accepted (Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold ()))

let test_cluster_routing_skips_unhealthy () =
  let _, cluster = fresh_cluster ~routing:Cluster.Round_robin () in
  Cluster.mark_down cluster 1;
  let picks =
    List.init 4 (fun _ ->
        accepted (Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold ()))
  in
  Alcotest.(check (list int)) "skips server 1" [ 0; 2; 0; 2 ] picks

let test_cluster_end_to_end () =
  (* a slow function keeps several invocations in flight at once, so
     the warm-first router has to spread across the fleet *)
  let engine, cluster = fresh_cluster () in
  Cluster.register cluster
    (Function_def.create ~name:"slow" ~vcpus:1 ~memory_mb:512
       ~exec:(Function_def.Fixed (Time.span_ms 5.0)) ());
  Cluster.provision cluster ~name:"slow" ~total:9 ~strategy:Sandbox.Horse;
  for i = 0 to 29 do
    ignore
      (Engine.schedule engine
         ~after:(Time.span_ms (float_of_int i *. 1.0))
         (fun _ ->
           ignore
             (Cluster.trigger cluster ~name:"slow"
                ~mode:(Platform.Warm Sandbox.Horse) ())))
  done;
  Engine.run engine;
  Alcotest.(check int) "30 completions" 30
    (List.length (Cluster.records cluster));
  Alcotest.(check int) "pool restored" 9 (Cluster.pool_size cluster ~name:"slow");
  let counts = Cluster.triggers_per_server cluster in
  Alcotest.(check bool) "every server participated" true
    (Array.for_all (fun c -> c > 0) counts)

(* ------------------------------------------------------------------ *)
(* Scheduling policies: rejection paths, queueing, recovery            *)
(* ------------------------------------------------------------------ *)

let each_policy f =
  List.iter
    (fun policy -> f ~pname:(Cluster.Policy.name policy) ~policy)
    (Cluster.Policy.builtins ())

let test_policy_no_warm_rejects () =
  (* a fleet-wide dry pool is the same typed rejection under every
     policy — pull spends a seeded token and learns from the server,
     push and core fall through their warm-first preference *)
  each_policy (fun ~pname ~policy ->
      let _, cluster = fresh_cluster ~policy () in
      (match
         Cluster.trigger cluster ~name:"nat"
           ~mode:(Platform.Warm Sandbox.Horse) ()
       with
      | Cluster.Accepted _ | Cluster.Queued | Cluster.Forwarded _ ->
        Alcotest.failf "%s: dry fleet must reject" pname
      | Cluster.Rejected r ->
        Alcotest.(check string)
          (pname ^ ": reason")
          "no-warm-capacity"
          (Cluster.reject_reason_name r.Cluster.reason));
      Alcotest.(check int)
        (pname ^ ": counted")
        1
        (Horse_sim.Metrics.counter (Cluster.metrics cluster)
           "cluster.rejections.no-warm-capacity"))

let test_policy_all_down_rejects () =
  (* [All_servers_down] is rejected before any policy runs, and a
     recovered server takes traffic again under every policy (pull
     restarts it with a probe window) *)
  each_policy (fun ~pname ~policy ->
      let _, cluster = fresh_cluster ~policy () in
      for i = 0 to Cluster.server_count cluster - 1 do
        Cluster.mark_down cluster i
      done;
      (match Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold () with
      | Cluster.Accepted _ | Cluster.Queued | Cluster.Forwarded _ ->
        Alcotest.failf "%s: downed fleet must reject" pname
      | Cluster.Rejected r ->
        Alcotest.(check string)
          (pname ^ ": reason")
          "all-servers-down"
          (Cluster.reject_reason_name r.Cluster.reason));
      Cluster.mark_up cluster 1;
      match Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold () with
      | Cluster.Accepted i ->
        Alcotest.(check int) (pname ^ ": routed to the survivor") 1 i
      | Cluster.Queued | Cluster.Forwarded _ ->
        Alcotest.failf "%s: survivor must take traffic" pname
      | Cluster.Rejected _ ->
        Alcotest.failf "%s: recovered fleet must accept" pname)

let test_policy_blackout_midstorm_recovers () =
  (* a full-fleet blackout in the middle of a steady trigger storm:
     every in-outage trigger is a typed rejection, and the moment the
     fleet heals the storm completes normally — under every policy *)
  each_policy (fun ~pname ~policy ->
      let engine, cluster = fresh_cluster ~policy () in
      Cluster.provision cluster ~name:"nat" ~total:6 ~strategy:Sandbox.Horse;
      for i = 0 to 299 do
        ignore
          (Engine.schedule engine
             ~after:(Time.span_us (float_of_int i *. 100.0))
             (fun _ ->
               ignore
                 (Cluster.trigger cluster ~name:"nat"
                    ~mode:(Platform.Warm Sandbox.Horse) ())))
      done;
      (* outage window [10.05ms, 20.05ms): triggers 101..200 land in
         it; the off-grid boundaries keep same-instant ordering out of
         the picture *)
      ignore
        (Engine.schedule engine ~after:(Time.span_us 10_050.0) (fun _ ->
             for i = 0 to Cluster.server_count cluster - 1 do
               Cluster.mark_down cluster i
             done));
      ignore
        (Engine.schedule engine ~after:(Time.span_us 20_050.0) (fun _ ->
             for i = 0 to Cluster.server_count cluster - 1 do
               Cluster.mark_up cluster i
             done));
      Engine.run engine;
      let rejections = Cluster.rejections cluster in
      Alcotest.(check int) (pname ^ ": outage rejections") 100
        (List.length rejections);
      List.iter
        (fun (r : Cluster.rejection) ->
          Alcotest.(check string)
            (pname ^ ": outage reason")
            "all-servers-down"
            (Cluster.reject_reason_name r.Cluster.reason))
        rejections;
      Alcotest.(check int)
        (pname ^ ": storm completed around the outage")
        200 (Cluster.record_count cluster);
      Alcotest.(check int) (pname ^ ": queue drained") 0
        (Cluster.pending_count cluster))

let test_pull_queues_and_claims () =
  (* with no provisioned pools each server holds exactly its seeded
     token: the third concurrent trigger must park in the router
     queue, and the first completion's claim must drain it *)
  let engine, cluster =
    fresh_cluster ~servers:2 ~policy:(Cluster.Policy.pull ()) ()
  in
  let outcome () = Cluster.trigger cluster ~name:"nat" ~mode:Platform.Cold () in
  (match (outcome (), outcome (), outcome ()) with
  | Cluster.Accepted 0, Cluster.Accepted 1, Cluster.Queued -> ()
  | _ -> Alcotest.fail "expected tokens to route 0, 1 then queue");
  Alcotest.(check int) "one pending" 1 (Cluster.pending_count cluster);
  Engine.run engine;
  Alcotest.(check int) "queue drained" 0 (Cluster.pending_count cluster);
  Alcotest.(check int) "all three completed" 3 (Cluster.record_count cluster)

let test_cluster_e2e_estimator () =
  (* the opt-in router-side estimator sees one observation per
     completion, including queued (pull) triggers; clusters without
     [~e2e] carry none *)
  let engine, cluster = fresh_cluster ~e2e:true () in
  (* one parked sandbox per concurrent trigger: the five fire at the
     same instant, before any completion can re-park *)
  Cluster.provision cluster ~name:"nat" ~total:5 ~strategy:Sandbox.Horse;
  for _ = 1 to 5 do
    ignore
      (Cluster.trigger cluster ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse)
         ())
  done;
  Engine.run engine;
  (match Cluster.e2e_latencies cluster with
  | None -> Alcotest.fail "estimator requested but absent"
  | Some q ->
    Alcotest.(check int) "one observation per completion" 5
      (Horse_sim.Stats.Quantile.count q);
    Alcotest.(check bool)
      "p99.9 positive" true
      (Horse_sim.Stats.Quantile.percentile q 99.9 > 0.0));
  let _, plain = fresh_cluster () in
  Alcotest.(check bool)
    "absent unless requested" true
    (Option.is_none (Cluster.e2e_latencies plain))

(* ------------------------------------------------------------------ *)
(* Load index vs naive scan: trace equality                            *)
(* ------------------------------------------------------------------ *)

module Load_index = Horse_faas.Load_index

type li_op = Li_set of int * int | Li_remove of int | Li_add of int

let li_n = 6

(* The bucketed index must agree with the scan it replaced — lowest
   present index with the minimal load — after every operation of a
   random script, including loads well past the initial bucket range
   and argmin over an emptied membership. *)
let li_spec =
  let gen rand =
    let i = Random.State.int rand li_n in
    match Random.State.int rand 4 with
    | 0 | 1 -> Li_set (i, Random.State.int rand 40)
    | 2 -> Li_remove i
    | _ -> Li_add i
  in
  let show = function
    | Li_set (i, l) -> Printf.sprintf "Set (%d, %d)" i l
    | Li_remove i -> Printf.sprintf "Remove %d" i
    | Li_add i -> Printf.sprintf "Add %d" i
  in
  let make () =
    let sut = Load_index.create ~n:li_n in
    let loads = Array.make li_n 0 and present = Array.make li_n true in
    fun op ->
      (match op with
      | Li_set (i, l) ->
        Load_index.set sut i l;
        loads.(i) <- l
      | Li_remove i ->
        Load_index.remove sut i;
        present.(i) <- false
      | Li_add i ->
        Load_index.add sut i;
        present.(i) <- true);
      let scan = ref None in
      for i = 0 to li_n - 1 do
        if present.(i) then
          match !scan with
          | None -> scan := Some i
          | Some j -> if loads.(i) < loads.(j) then scan := Some i
      done;
      let show_opt = function
        | None -> "none"
        | Some i -> string_of_int i
      in
      if Load_index.argmin sut <> !scan then
        Some
          (Printf.sprintf "argmin %s, scan %s"
             (show_opt (Load_index.argmin sut))
             (show_opt !scan))
      else
        let diverged = ref None in
        for i = 0 to li_n - 1 do
          if !diverged = None && Load_index.load sut i <> loads.(i) then
            diverged :=
              Some
                (Printf.sprintf "load %d: index %d, oracle %d" i
                   (Load_index.load sut i) loads.(i))
        done;
        !diverged
  in
  Harness.{ name = "load index vs naive scan"; gen; show; make }

let test_load_index_oracle () = Harness.check li_spec

let test_load_index_edges () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Load_index.create: n <= 0")
    (fun () -> ignore (Load_index.create ~n:0));
  let li = Load_index.create ~n:3 in
  Load_index.set li 0 2;
  Load_index.set li 1 1;
  Load_index.set li 2 1;
  Alcotest.(check (option int)) "lowest of the minimal" (Some 1)
    (Load_index.argmin li);
  Load_index.remove li 1;
  Alcotest.(check (option int)) "exclusion" (Some 2) (Load_index.argmin li);
  Load_index.remove li 2;
  Load_index.remove li 0;
  Alcotest.(check (option int)) "all excluded" None (Load_index.argmin li);
  (* re-admission returns at the tracked load, not at zero *)
  Load_index.add li 0;
  Load_index.add li 1;
  Alcotest.(check (option int)) "re-admitted at tracked loads" (Some 1)
    (Load_index.argmin li)

(* ------------------------------------------------------------------ *)
(* Arena vs boxed records: model-based oracle                          *)
(* ------------------------------------------------------------------ *)

module Trigger_records = Horse_faas.Trigger_records
module Batch = Horse_trace.Batch

(* Every completion is observed twice — through the boxed on_complete
   sink (the oracle list) and through the struct-of-arrays arena.
   After every op the arena views (the memoized [records] shim,
   [fold_records] + [record_of_slot], and the int columns) must agree
   with the oracle exactly. *)
type arena_op = Provision of int | Trigger | Advance of int (* us *)

let arena_spec =
  {
    Harness.name = "platform arena vs boxed completion oracle";
    gen =
      (fun st ->
        match Random.State.int st 4 with
        | 0 -> Provision (1 + Random.State.int st 3)
        | 1 | 2 -> Trigger
        | _ -> Advance (1 + Random.State.int st 2000));
    show =
      (function
      | Provision n -> Printf.sprintf "Provision %d" n
      | Trigger -> "Trigger"
      | Advance us -> Printf.sprintf "Advance %dus" us);
    make =
      (fun () ->
        let engine, platform = fresh ~seed:23 () in
        register_nat platform;
        let oracle = ref [] in
        fun op ->
          (match op with
          | Provision n ->
            Platform.provision platform ~name:"nat" ~count:n
              ~strategy:Sandbox.Horse
          | Trigger -> (
            try
              Platform.trigger platform ~name:"nat"
                ~mode:(Platform.Warm Sandbox.Horse)
                ~on_complete:(fun r -> oracle := r :: !oracle)
                ()
            with Platform.No_warm_sandbox _ -> ())
          | Advance us ->
            Engine.run engine
              ~until:
                (Time.add (Engine.now engine)
                   (Time.span_us (float_of_int us))));
          let expected = List.rev !oracle in
          let n = List.length expected in
          if Platform.record_count platform <> n then
            Some
              (Printf.sprintf "record_count %d, oracle saw %d"
                 (Platform.record_count platform) n)
          else if Platform.records platform <> expected then
            Some "memoized records shim disagrees with the oracle"
          else
            let rebuilt =
              Platform.fold_records platform ~init:[] ~f:(fun acc slot ->
                  Platform.record_of_slot platform slot :: acc)
            in
            if List.rev rebuilt <> expected then
              Some "fold_records + record_of_slot disagrees"
            else
              let arena = Platform.trigger_records platform in
              let bad = ref None in
              List.iteri
                (fun slot r ->
                  if
                    !bad = None
                    && Trigger_records.total_ns arena slot
                       <> ns_of (Platform.record_total r)
                  then
                    bad :=
                      Some
                        (Printf.sprintf
                           "total_ns column diverges at slot %d" slot))
                expected;
              !bad);
  }

let test_arena_oracle () = Harness.check arena_spec

(* ------------------------------------------------------------------ *)
(* Batched vs closure-per-trigger ingestion                            *)
(* ------------------------------------------------------------------ *)

let test_batch_matches_closure_ingestion () =
  let mk () =
    let engine = Engine.create ~seed:5 () in
    let cluster =
      Cluster.create ~servers:2 ~topology:small_topology ~seed:5 ~engine ()
    in
    Cluster.register cluster
      (Function_def.create ~name:"nat" ~vcpus:1 ~memory_mb:512
         ~exec:(Function_def.Ull Category.Cat2) ());
    Cluster.provision cluster ~name:"nat" ~total:40
      ~strategy:Sandbox.Horse;
    (engine, cluster)
  in
  let engine_a, cluster_a = mk () in
  let fn_id = Cluster.fn_id cluster_a ~name:"nat" in
  let rng = Horse_sim.Rng.create ~seed:7 in
  let batch =
    Batch.uniform ~rng ~n:200 ~duration:(Time.span_ms 50.0) ~fn_id
      ~payload:(Platform.mode_code (Platform.Warm Sandbox.Horse))
      ()
  in
  (* the pre-batch idiom: one scheduled closure per trigger *)
  for k = 0 to Batch.length batch - 1 do
    ignore
      (Engine.schedule engine_a ~after:(Batch.time batch k) (fun _ ->
           ignore
             (Cluster.trigger_id cluster_a ~fn_id
                ~mode:(Platform.Warm Sandbox.Horse)
                ())))
  done;
  Cluster.run cluster_a;
  (* window >= n: event-for-event identical schedule *)
  let _, cluster_b = mk () in
  Cluster.schedule_batch ~window:1024 cluster_b batch;
  Cluster.run cluster_b;
  Alcotest.(check bool) "window >= n bit-identical to closures" true
    (Cluster.records cluster_a = Cluster.records cluster_b);
  Alcotest.(check bool) "rejections also identical" true
    (Cluster.rejections cluster_a = Cluster.rejections cluster_b);
  (* a small window re-runs deterministically and loses nothing *)
  let _, cluster_c = mk () in
  Cluster.schedule_batch ~window:7 cluster_c batch;
  Cluster.run cluster_c;
  let _, cluster_d = mk () in
  Cluster.schedule_batch ~window:7 cluster_d batch;
  Cluster.run cluster_d;
  Alcotest.(check bool) "windowed ingestion deterministic" true
    (Cluster.records cluster_c = Cluster.records cluster_d);
  Alcotest.(check int) "windowed ingestion completes the same count"
    (List.length (Cluster.records cluster_a))
    (List.length (Cluster.records cluster_c))

(* ------------------------------------------------------------------ *)
(* Metrics surface                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_recorded () =
  let engine, platform = fresh () in
  register_nat platform;
  Platform.provision platform ~name:"nat" ~count:1 ~strategy:Sandbox.Horse;
  ignore (run_one platform engine ~name:"nat" ~mode:(Platform.Warm Sandbox.Horse));
  let m = Platform.metrics platform in
  Alcotest.(check int) "trigger counter" 1
    (Metrics.counter m "platform.triggers.warm-horse");
  Alcotest.(check int) "completion counter" 1
    (Metrics.counter m "platform.completions");
  Alcotest.(check bool) "init dist exists" true
    (match Metrics.dist m "platform.init.warm-horse" with
    | Some d -> Metrics.dist_count d = 1
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_platform_conservation =
  (* after the engine drains, every trigger has exactly one record,
     nothing is live, and the pool is back to its provisioned size *)
  QCheck2.Test.make ~name:"platform conserves invocations and pools" ~count:60
    QCheck2.Gen.(
      pair (1 -- 4) (list_size (1 -- 25) (pair (0 -- 3) (1 -- 5000))))
    (fun (pool, script) ->
      let engine = Engine.create ~seed:97 () in
      let platform =
        Platform.create ~topology:small_topology ~jitter:0.0 ~seed:97 ~engine ()
      in
      register_nat platform;
      Platform.provision platform ~name:"nat" ~count:pool
        ~strategy:Sandbox.Horse;
      let attempted = ref 0 in
      List.iter
        (fun (kind, delay_us) ->
          ignore
            (Engine.schedule engine
               ~after:(Time.span_us (float_of_int delay_us))
               (fun _ ->
                 let mode =
                   match kind with
                   | 0 -> Platform.Cold
                   | 1 -> Platform.Restore
                   | 2 -> Platform.Warm Sandbox.Horse
                   | _ -> Platform.Warm Sandbox.Vanilla
                 in
                 match Platform.trigger platform ~name:"nat" ~mode () with
                 | () -> incr attempted
                 | exception Platform.No_warm_sandbox _ -> ())))
        script;
      Engine.run ~until:(Time.of_ns 60_000_000_000) engine;
      List.length (Platform.records platform) = !attempted
      && Platform.live_invocations platform = 0
      && Platform.pool_size platform ~name:"nat" >= pool)

let prop_keepalive_accounting =
  QCheck2.Test.make ~name:"keep-alive: warm + cold == invocations" ~count:200
    QCheck2.Gen.(
      pair (1 -- 60)
        (list_size (0 -- 40) (1 -- 3_000_000)))
    (fun (window_s, gaps_ms) ->
      let arrivals =
        List.fold_left
          (fun acc gap_ms ->
            match acc with
            | [] -> [ Time.span_ms (float_of_int gap_ms) ]
            | last :: _ ->
              Time.add_span last (Time.span_ms (float_of_int gap_ms)) :: acc)
          [] gaps_ms
        |> List.rev
      in
      let e =
        Keepalive.evaluate
          (Keepalive.Fixed (Time.span_s (float_of_int window_s)))
          ~arrivals
      in
      e.Keepalive.warm_hits + e.Keepalive.cold_starts = e.Keepalive.invocations
      && (arrivals = [] || e.Keepalive.cold_starts >= 1))

let prop_autoscaler_bounded =
  QCheck2.Test.make ~name:"autoscaler recommendation within [0, max_pool]"
    ~count:200
    QCheck2.Gen.(
      pair (1 -- 20) (list_size (0 -- 60) bool))
    (fun (max_pool, script) ->
      let a = Autoscaler.create ~max_pool ~headroom:1 () in
      let now = ref 0 in
      List.iter
        (fun start ->
          now := !now + 1_000_000;
          if start then Autoscaler.note_start a ~at:(Time.of_ns !now)
          else if Autoscaler.current_concurrency a > 0 then
            Autoscaler.note_complete a ~at:(Time.of_ns !now))
        script;
      let r = Autoscaler.recommendation a ~at:(Time.of_ns !now) in
      r >= 0 && r <= max_pool)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_platform_conservation; prop_keepalive_accounting;
      prop_autoscaler_bounded ]

let () =
  Alcotest.run "horse_faas"
    [
      ( "function_def",
        [
          Alcotest.test_case "defaults" `Quick test_function_def_defaults;
          Alcotest.test_case "sample exec" `Quick test_sample_exec_models;
        ] );
      ( "registry",
        [
          Alcotest.test_case "register twice" `Quick test_register_twice_rejected;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
          Alcotest.test_case "provision fills pool" `Quick
            test_provision_fills_pool;
          Alcotest.test_case "warm without pool" `Quick
            test_warm_without_pool_raises;
        ] );
      ( "start_modes",
        [
          Alcotest.test_case "cold" `Quick test_cold_start_latency;
          Alcotest.test_case "restore" `Quick test_restore_start_latency;
          Alcotest.test_case "warm vs horse" `Quick
            test_warm_vanilla_vs_horse_init;
          Alcotest.test_case "pool cycling" `Quick
            test_warm_sandbox_returns_to_pool;
          Alcotest.test_case "records" `Quick test_records_accumulate;
          Alcotest.test_case "pool exhaustion" `Quick
            test_concurrent_warm_pool_exhaustion;
        ] );
      ( "keep_alive",
        [
          Alcotest.test_case "expiry" `Quick test_keep_alive_expiry;
          Alcotest.test_case "reuse" `Quick test_keep_alive_reuse_prevents_expiry;
        ] );
      ( "preemption",
        [
          Alcotest.test_case "extends running invocation" `Quick
            test_preemption_extends_running_invocation;
          Alcotest.test_case "vanilla has none" `Quick
            test_no_preemption_under_vanilla;
        ] );
      ( "keepalive",
        [
          Alcotest.test_case "fixed recommendation" `Quick
            test_fixed_policy_recommendation;
          Alcotest.test_case "histogram learns" `Quick
            test_histogram_policy_learns;
          Alcotest.test_case "histogram cap" `Quick test_histogram_cap_applies;
          Alcotest.test_case "validation" `Quick test_policy_validation;
          Alcotest.test_case "evaluate fixed" `Quick test_evaluate_fixed;
          Alcotest.test_case "short window all cold" `Quick
            test_evaluate_short_window_all_cold;
          Alcotest.test_case "cost tradeoff" `Quick test_evaluate_cost_tradeoff;
          Alcotest.test_case "rejects unsorted" `Quick
            test_evaluate_rejects_unsorted;
        ] );
      ( "energy",
        [
          Alcotest.test_case "accounts energy" `Quick
            test_platform_accounts_energy;
          Alcotest.test_case "governor signal identical" `Quick
            test_governor_signal_identical_across_strategies;
        ] );
      ( "autoscaler",
        [
          Alcotest.test_case "tracks concurrency" `Quick
            test_autoscaler_tracks_concurrency;
          Alcotest.test_case "recommendation" `Quick
            test_autoscaler_recommendation;
          Alcotest.test_case "caps" `Quick test_autoscaler_caps;
          Alcotest.test_case "attached to platform" `Quick
            test_autoscaler_attached_to_platform;
          Alcotest.test_case "reclaim" `Quick test_reclaim;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "create/register" `Quick
            test_cluster_create_and_register;
          Alcotest.test_case "provision spreads" `Quick
            test_cluster_provision_spreads;
          Alcotest.test_case "round robin" `Quick test_cluster_round_robin;
          Alcotest.test_case "least loaded" `Quick test_cluster_least_loaded;
          Alcotest.test_case "warm first" `Quick test_cluster_warm_first;
          Alcotest.test_case "warm exhausted" `Quick
            test_cluster_warm_exhausted_rejects;
          Alcotest.test_case "all servers down" `Quick
            test_cluster_all_down_rejects;
          Alcotest.test_case "routing skips unhealthy" `Quick
            test_cluster_routing_skips_unhealthy;
          Alcotest.test_case "end to end" `Quick test_cluster_end_to_end;
          Alcotest.test_case "policies: no warm capacity" `Quick
            test_policy_no_warm_rejects;
          Alcotest.test_case "policies: all servers down" `Quick
            test_policy_all_down_rejects;
          Alcotest.test_case "policies: blackout mid-storm recovers" `Quick
            test_policy_blackout_midstorm_recovers;
          Alcotest.test_case "pull queues and claims" `Quick
            test_pull_queues_and_claims;
          Alcotest.test_case "e2e estimator" `Quick test_cluster_e2e_estimator;
          Alcotest.test_case "load index vs scan (harness)" `Quick
            test_load_index_oracle;
          Alcotest.test_case "load index edges" `Quick test_load_index_edges;
          Alcotest.test_case "arena vs boxed oracle (harness)" `Quick
            test_arena_oracle;
          Alcotest.test_case "batch vs closure ingestion" `Quick
            test_batch_matches_closure_ingestion;
        ] );
      ( "metrics",
        [ Alcotest.test_case "recorded" `Quick test_metrics_recorded ] );
      ("properties", props);
    ]
