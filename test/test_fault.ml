(* Property tests for the fault-injection plane: replay determinism,
   inertness of zero-rate plans, crash consistency of the scheduler
   state, the Warm -> Restore -> Cold fallback ladder, exception
   safety of failed triggers, determinism of the faults experiment
   across --jobs, and a mutation self-test proving the model-based
   harness catches a deliberately broken implementation with a small
   shrunk script. *)

module Engine = Horse_sim.Engine
module Time = Horse_sim.Time_ns
module Metrics = Horse_sim.Metrics
module Rng = Horse_sim.Rng
module Topology = Horse_cpu.Topology
module Scheduler = Horse_sched.Scheduler
module Runqueue = Horse_sched.Runqueue
module Al = Horse_psm.Arena_list
module Ll = Horse_psm.Linked_list
module Sandbox = Horse_vmm.Sandbox
module Vmm = Horse_vmm.Vmm
module Platform = Horse_faas.Platform
module Function_def = Horse_faas.Function_def
module Cluster = Horse_faas.Cluster
module Fault = Horse_fault.Fault
module Category = Horse_workload.Category
module Workflow = Horse_faas.Workflow
module E = Horse.Experiments

let small_topology = Topology.create ~sockets:1 ~cores_per_socket:8 ()

let ull_def =
  Function_def.create ~name:"ull" ~vcpus:2 ~memory_mb:512
    ~exec:(Function_def.Ull Category.Cat2) ()

(* ------------------------------------------------------------------ *)
(* Byte-level state dumps                                              *)
(* ------------------------------------------------------------------ *)

let dump_counters buf metrics =
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
    (Metrics.counters metrics)

let dump_record buf (server, (r : Platform.record)) =
  Buffer.add_string buf
    (Printf.sprintf "%d|%s|%s|%d|%d|%d|%d|%d\n" server r.Platform.function_name
       (Platform.mode_name r.Platform.mode)
       (Time.to_ns r.Platform.triggered_at)
       (Time.span_to_ns r.Platform.init)
       (Time.span_to_ns r.Platform.exec)
       (Time.span_to_ns r.Platform.preemption)
       (Time.to_ns r.Platform.completed_at))

let dump_cluster cluster =
  let buf = Buffer.create 4096 in
  List.iter (dump_record buf) (Cluster.records cluster);
  List.iter
    (fun (rj : Cluster.rejection) ->
      Buffer.add_string buf
        (Printf.sprintf "reject %s %s @%d\n"
           (Cluster.reject_reason_name rj.Cluster.reason)
           rj.Cluster.function_name
           (Time.to_ns rj.Cluster.at)))
    (Cluster.rejections cluster);
  dump_counters buf (Cluster.metrics cluster);
  for i = 0 to Cluster.server_count cluster - 1 do
    dump_counters buf (Platform.metrics (Cluster.server cluster i))
  done;
  Buffer.contents buf

(* A fault-ridden Azure-flavoured storm on a small two-server cluster:
   the shared workload of the determinism and honesty tests. *)
let storm ?(seed = 7) ?(plan = fun seed -> Fault.Plan.uniform ~seed ~rate:0.05 ())
    ?(arrivals = 150) () =
  let engine = Engine.create ~seed () in
  let cluster =
    Cluster.create ~servers:2 ~topology:small_topology ~seed
      ~faults:(plan (seed + 1)) ~recovery:Platform.Recovery.default ~engine ()
  in
  Cluster.register cluster ull_def;
  Cluster.provision cluster ~name:"ull" ~total:8 ~strategy:Sandbox.Horse;
  let rng = Rng.create ~seed:(seed + 2) in
  for _ = 1 to arrivals do
    let after = Time.span_us (Rng.float rng 5_000.0) in
    ignore
      (Engine.schedule engine ~after (fun _ ->
           ignore
             (Cluster.trigger cluster ~name:"ull"
                ~mode:(Platform.Warm Sandbox.Horse) ())))
  done;
  ignore (Cluster.schedule_faults cluster ~horizon:(Time.span_ms 10.0));
  Engine.run engine;
  cluster

let test_replay_determinism () =
  (* Two full runs from the same seeds must agree byte for byte:
     records, rejections and every counter on every server. *)
  Alcotest.(check string)
    "byte-identical replays"
    (dump_cluster (storm ()))
    (dump_cluster (storm ()))

let test_zero_rate_is_inert () =
  (* An all-zero plan must be bit-identical to no plan at all: rate
     zero draws nothing, so the Rng streams of the workload are
     untouched. *)
  Alcotest.(check string)
    "rate 0 == no plan"
    (dump_cluster (storm ~plan:(fun _ -> Fault.Plan.none) ()))
    (dump_cluster
       (storm ~plan:(fun seed -> Fault.Plan.uniform ~seed ~rate:0.0 ()) ()))

let test_latency_identity_under_faults () =
  (* Honest accounting: for every completed invocation, wall time
     from trigger to completion is exactly init + exec + preemption —
     fallback rungs, retries and slowdowns are all inside the record,
     never hidden beside it. *)
  let cluster = storm () in
  let records = Cluster.records cluster in
  Alcotest.(check bool) "some invocations completed" true (records <> []);
  List.iter
    (fun (_, (r : Platform.record)) ->
      Alcotest.(check int)
        "completed_at - triggered_at = record_total"
        (Time.span_to_ns (Platform.record_total r))
        (Time.span_to_ns (Time.diff r.Platform.completed_at r.Platform.triggered_at)))
    records

(* ------------------------------------------------------------------ *)
(* Crash-during-resume leaves the scheduler consistent                 *)
(* ------------------------------------------------------------------ *)

let test_resume_crash_consistency () =
  let plan = Fault.Plan.create ~rates:[ (Fault.Resume_crash, 1.0) ] () in
  let scheduler = Scheduler.create ~topology:small_topology () in
  let metrics = Metrics.create () in
  let vmm = Vmm.create ~jitter:0.0 ~faults:plan ~scheduler ~metrics () in
  let arena = Scheduler.arena scheduler in
  let queued_slots () =
    Array.fold_left (fun acc rq -> acc + Runqueue.length rq) 0
      (Scheduler.runqueues scheduler)
  in
  let sb = Sandbox.create ~id:0 ~vcpus:4 ~memory_mb:512 ~ull:true () in
  ignore (Vmm.boot vmm sb);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb);
  let hs = Option.get (Sandbox.horse_state sb) in
  let merge_list = hs.Sandbox.merge_vcpus in
  let stale_handle = Al.first merge_list in
  Alcotest.(check bool) "pause parked merge vcpus" false (Al.is_nil stale_handle);
  let ull_queue = hs.Sandbox.ull_queue in
  Alcotest.(check int) "subscribed while paused" 1
    (Runqueue.subscriber_count ull_queue);
  (match Vmm.resume vmm sb with
  | _ -> Alcotest.fail "resume should have crashed"
  | exception Fault.Injected { trigger = Fault.Resume_crash; site; _ } ->
    Alcotest.(check string) "site" "vmm.resume" site);
  Alcotest.(check bool) "sandbox crashed" true
    (Sandbox.state sb = Sandbox.Crashed);
  (* no leaked arena slots: only slots actually enqueued on run queues
     may be live, and the crashed sandbox's merge list is gone *)
  Alcotest.(check int) "no leaked arena slots" (queued_slots ())
    (Al.live_slots arena);
  Alcotest.(check int) "merge list drained" 0 (Al.length merge_list);
  (* generation checks still fire: the saved handle is stale *)
  Alcotest.check_raises "stale handle dead" Not_found (fun () ->
      ignore (Al.value merge_list stale_handle));
  Alcotest.(check int) "maintenance subscription removed" 0
    (Runqueue.subscriber_count ull_queue);
  Alcotest.(check int) "crash counted" 1 (Metrics.counter metrics "vmm.crashes");
  (* the machinery still works afterwards: a fresh sandbox completes a
     full cycle on an inert plan path (resume crash only fires per
     roll; re-roll at rate 1.0 would crash again, so pause Vanilla and
     check boot/pause reuse of the freed slots) *)
  let sb2 = Sandbox.create ~id:1 ~vcpus:2 ~memory_mb:512 ~ull:true () in
  ignore (Vmm.boot vmm sb2);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb2);
  Vmm.stop vmm sb2;
  Alcotest.(check int) "slots all recycled" (queued_slots ())
    (Al.live_slots arena)

(* ------------------------------------------------------------------ *)
(* The fallback ladder                                                 *)
(* ------------------------------------------------------------------ *)

let fresh_platform ?(seed = 11) ~rates ~recovery () =
  let engine = Engine.create ~seed () in
  let plan = Fault.Plan.create ~rates () in
  let platform =
    Platform.create ~topology:small_topology ~jitter:0.0 ~seed ~faults:plan
      ~recovery ~engine ()
  in
  Platform.register platform ull_def;
  (engine, platform)

let test_fallback_ladder_reaches_cold () =
  (* Every warm resume and every restore is doomed: the ladder must
     walk Warm -> Restore -> Cold and serve the invocation cold, with
     the burned rungs charged into init. *)
  let engine, platform =
    fresh_platform
      ~rates:[ (Fault.Resume_crash, 1.0); (Fault.Restore_corruption, 1.0) ]
      ~recovery:Platform.Recovery.default ()
  in
  Platform.provision platform ~name:"ull" ~count:2 ~strategy:Sandbox.Horse;
  Platform.trigger platform ~name:"ull" ~mode:(Platform.Warm Sandbox.Horse) ();
  Engine.run engine;
  (match Platform.records platform with
  | [ r ] ->
    Alcotest.(check string) "served cold" "cold"
      (Platform.mode_name r.Platform.mode);
    Alcotest.(check int) "honest latency"
      (Time.span_to_ns (Platform.record_total r))
      (Time.span_to_ns (Time.diff r.Platform.completed_at r.Platform.triggered_at));
    (* the cold rung alone takes ~1.5s; burned warm+restore rungs sit
       on top, so init must exceed the pure cold cost *)
    Alcotest.(check bool) "burned rungs charged" true
      (Time.span_to_ns r.Platform.init > 1_500_000_000)
  | rs -> Alcotest.failf "expected exactly one record, got %d" (List.length rs));
  let m = Platform.metrics platform in
  Alcotest.(check int) "warm->restore descent" 1
    (Metrics.counter m "platform.fallbacks.warm-horse-to-restore");
  Alcotest.(check int) "restore->cold descent" 1
    (Metrics.counter m "platform.fallbacks.restore-to-cold");
  Alcotest.(check int) "one cold start" 1
    (Metrics.counter m "platform.triggers.cold")

let test_total_chaos_terminates () =
  (* Everything fails, always.  The ladder plus bounded retries must
     still terminate: the engine drains, nothing completes, the
     invocation is counted as aborted. *)
  let engine = Engine.create ~seed:13 () in
  let plan = Fault.Plan.uniform ~seed:13 ~rate:1.0 () in
  let platform =
    Platform.create ~topology:small_topology ~jitter:0.0 ~seed:13 ~faults:plan
      ~recovery:Platform.Recovery.default ~engine ()
  in
  Platform.register platform ull_def;
  Platform.trigger platform ~name:"ull" ~mode:(Platform.Warm Sandbox.Horse) ();
  Engine.run engine;
  Alcotest.(check int) "no records" 0 (List.length (Platform.records platform));
  Alcotest.(check int) "aborted" 1
    (Metrics.counter (Platform.metrics platform) "platform.aborts")

(* ------------------------------------------------------------------ *)
(* Faults x workflows                                                  *)
(* ------------------------------------------------------------------ *)

(* A crash mid-chain must fail only the downstream subgraph: upstream
   node records are retained, downstream nodes never run.  The cluster
   hands server 0 the plan derived at index 0, so the seed search
   probes that derived stream: first Exec_crash consult false (node A
   completes), second true (node B crashes; Recovery.none aborts). *)
let chain_crash_rates = [ (Fault.Exec_crash, 0.5) ]

let test_midchain_crash_fails_downstream_only () =
  let probe seed =
    let p =
      Fault.Plan.derive
        (Fault.Plan.create ~seed ~rates:chain_crash_rates ())
        ~index:0
    in
    (not (Fault.Plan.fires p Fault.Exec_crash))
    && Fault.Plan.fires p Fault.Exec_crash
  in
  let rec find_seed seed =
    if seed > 10_000 then Alcotest.fail "no [complete; crash] seed found"
    else if probe seed then seed
    else find_seed (seed + 1)
  in
  let seed = find_seed 1 in
  let engine = Engine.create ~seed:3 () in
  let cluster =
    Cluster.create ~servers:1 ~topology:small_topology ~seed:3
      ~faults:(Fault.Plan.create ~seed ~rates:chain_crash_rates ())
      ~engine ()
  in
  List.iter (Cluster.register cluster) (Workflow.nfv_defs ());
  let wf = Workflow.create ~cluster () in
  let id = Workflow.register wf ~name:"nfv" (Workflow.nfv_chain ()) in
  Workflow.provision wf ~wf_id:id ~per_unit:4;
  ignore (Workflow.start wf ~wf_id:id ());
  Workflow.run wf;
  (* node A (firewall) completed and its record is retained; node B
     (NAT) crashed and was aborted; node C (filter) never ran *)
  Alcotest.(check int) "one workflow record" 1 (Workflow.Records.count wf);
  Alcotest.(check int) "it is node 0" 0 (Workflow.Records.node wf 0);
  Alcotest.(check int) "one cluster record" 1 (Cluster.record_count cluster);
  Alcotest.(check int) "crash aborted" 1
    (Metrics.counter (Platform.metrics (Cluster.server cluster 0))
       "platform.aborts");
  Alcotest.(check int) "instance not completed" 0
    (Workflow.instances_completed wf);
  Alcotest.(check int) "not a rejection failure" 0
    (Workflow.instances_failed wf);
  (* the retained upstream value still matches the oracle *)
  Alcotest.(check int) "upstream value intact"
    (Workflow.oracle_values (Workflow.nfv_chain ()) ~seed:0).(0)
    (Workflow.value wf ~instance:0 ~node:0)

(* A fused segment rides the recovery ladder as ONE invocation: dry
   warm pool -> Restore (corrupted at rate 1.0) -> Cold, each descent
   counted once for the whole segment — where the unfused chain pays
   the full ladder per member. *)
let test_fused_segment_rides_ladder_once () =
  let run fuse =
    let engine = Engine.create ~seed:5 () in
    let cluster =
      Cluster.create ~servers:1 ~topology:small_topology ~seed:5
        ~faults:
          (Fault.Plan.create ~seed:5
             ~rates:[ (Fault.Restore_corruption, 1.0) ]
             ())
        ~recovery:Platform.Recovery.default ~engine ()
    in
    List.iter (Cluster.register cluster) (Workflow.nfv_defs ());
    let wf = Workflow.create ~fuse ~cluster () in
    let id = Workflow.register wf ~name:"nfv" (Workflow.nfv_chain ()) in
    (* deliberately no provisioning: every Warm rung starts dry *)
    ignore (Workflow.start wf ~wf_id:id ());
    Workflow.run wf;
    Alcotest.(check int) "instance completed" 1
      (Workflow.instances_completed wf);
    let expect = Workflow.oracle_values (Workflow.nfv_chain ()) ~seed:0 in
    for node = 0 to 2 do
      Alcotest.(check int)
        (Printf.sprintf "node %d value (fuse=%b)" node fuse)
        expect.(node)
        (Workflow.value wf ~instance:0 ~node)
    done;
    let m = Platform.metrics (Cluster.server cluster 0) in
    ( Metrics.counter m "platform.fallbacks.warm-horse-to-restore",
      Metrics.counter m "platform.fallbacks.restore-to-cold",
      Metrics.counter m "platform.triggers.cold" )
  in
  Alcotest.(check (triple int int int))
    "fused: whole segment descends once" (1, 1, 1) (run true);
  Alcotest.(check (triple int int int))
    "unfused: every member descends" (3, 3, 3) (run false)

(* Regression for the backoff-accounting fix: the init distribution
   must observe only at completion, so an observer registered (or
   read) mid-ladder sees nothing from the doomed first attempt, and
   the single eventual observation equals the record's charged init
   (burned exec + backoff wait + the successful resume). *)
let test_backoff_charged_visible_midladder () =
  let rates = [ (Fault.Exec_crash, 0.5) ] in
  (* platform used directly: no per-server derivation.  Search for
     [crash; fraction; no-crash]: attempt 1 dies mid-exec, the retry
     completes. *)
  let probe seed =
    let p = Fault.Plan.create ~seed ~rates () in
    Fault.Plan.fires p Fault.Exec_crash
    && begin
         ignore (Fault.Plan.fraction p Fault.Exec_crash);
         not (Fault.Plan.fires p Fault.Exec_crash)
       end
  in
  let rec find_seed seed =
    if seed > 10_000 then Alcotest.fail "no [crash; complete] seed found"
    else if probe seed then seed
    else find_seed (seed + 1)
  in
  let seed = find_seed 1 in
  let backoff = Time.span_ms 1.0 in
  let engine = Engine.create ~seed:11 () in
  let platform =
    Platform.create ~topology:small_topology ~jitter:0.0 ~seed:11
      ~faults:(Fault.Plan.create ~seed ~rates ())
      ~recovery:
        (Platform.Recovery.create ~max_attempts:2 ~backoff ~degrade:false ())
      ~engine ()
  in
  Platform.register platform ull_def;
  Platform.provision platform ~name:"ull" ~count:2 ~strategy:Sandbox.Horse;
  let init_dist () =
    Option.get (Metrics.dist (Platform.metrics platform) "platform.init.warm-horse")
  in
  let midladder_count = ref (-1) in
  Platform.trigger platform ~name:"ull" ~mode:(Platform.Warm Sandbox.Horse) ();
  (* attempt 1 launched synchronously at t=0 and is doomed; observe the
     stream 1ns in — before the crash resolves, long before the retry *)
  ignore
    (Engine.schedule engine ~after:(Time.span_ns 1) (fun _ ->
         midladder_count := Metrics.dist_count (init_dist ())));
  Engine.run engine;
  Alcotest.(check int) "doomed attempt published nothing" 0 !midladder_count;
  Alcotest.(check int) "crashed once, retried once" 1
    (Metrics.counter (Platform.metrics platform) "platform.retries");
  (match Platform.records platform with
  | [ r ] ->
    let d = init_dist () in
    Alcotest.(check int) "exactly one observation" 1 (Metrics.dist_count d);
    Alcotest.(check (float 0.5)) "observation = charged init"
      (float_of_int (Time.span_to_ns r.Platform.init))
      (Metrics.dist_mean d);
    (* the charge includes the backed-off wait, so it dominates the
       1 ms backoff alone *)
    Alcotest.(check bool) "backoff visible in init" true
      (Time.span_to_ns r.Platform.init > Time.span_to_ns backoff)
  | rs -> Alcotest.failf "expected exactly one record, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* Exception safety: a failed trigger is a no-op                       *)
(* ------------------------------------------------------------------ *)

let platform_snapshot engine platform =
  Harness.Snapshot.capture
    ([
       ("pool.ull", string_of_int (Platform.pool_size platform ~name:"ull"));
       ("live", string_of_int (Platform.live_invocations platform));
       ("records", string_of_int (List.length (Platform.records platform)));
       ("pending", string_of_int (Engine.pending engine));
       ("now", string_of_int (Time.to_ns (Engine.now engine)));
     ]
    @ List.map
        (fun (k, v) -> ("counter." ^ k, string_of_int v))
        (Metrics.counters (Platform.metrics platform)))

let test_failed_trigger_is_noop () =
  let engine, platform =
    fresh_platform ~rates:[] ~recovery:Platform.Recovery.none ()
  in
  let check_noop name f =
    let before = platform_snapshot engine platform in
    (try f () with Platform.No_warm_sandbox _ | Platform.Unknown_function _ -> ());
    match Harness.Snapshot.diff before (platform_snapshot engine platform) with
    | None -> ()
    | Some diff -> Alcotest.failf "%s mutated state: %s" name diff
  in
  check_noop "dry warm pool" (fun () ->
      Platform.trigger platform ~name:"ull" ~mode:(Platform.Warm Sandbox.Horse)
        ());
  check_noop "unknown function" (fun () ->
      Platform.trigger platform ~name:"ghost" ~mode:Platform.Cold ())

(* ------------------------------------------------------------------ *)
(* The faults experiment: --jobs invariance, seed determinism          *)
(* ------------------------------------------------------------------ *)

let test_faults_experiment_jobs_invariant () =
  List.iter
    (fun seed ->
      let run jobs =
        E.faults ~seed ~duration_s:0.5 ~rates:[ 0.0; 0.02 ] ~jobs ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: jobs 2 == jobs 1" seed)
        true
        (run 1 = run 2))
    [ 1; 42; 1337 ]

(* ------------------------------------------------------------------ *)
(* Mutation self-test: the harness catches a broken implementation     *)
(* ------------------------------------------------------------------ *)

type mut_op = MIns of int | MPop

(* The flat arena list with a deliberate mutation: inserts of values
   >= 90 are silently dropped.  The harness must catch the divergence
   from the boxed oracle and shrink the script to a handful of ops. *)
let mutated_spec : mut_op Harness.spec =
  {
    Harness.name = "mutated arena list (self-test)";
    gen =
      (fun st ->
        if Random.State.int st 4 = 0 then MPop
        else MIns (Random.State.int st 100));
    show =
      (function MIns v -> Printf.sprintf "MIns %d" v | MPop -> "MPop");
    make =
      (fun () ->
        let icmp = Int.compare in
        let bx = Ll.create ~compare:icmp () in
        let fl = Al.create (Al.create_arena ~compare:icmp ()) in
        fun op ->
          (match op with
          | MIns v ->
            ignore (Ll.insert_sorted bx v);
            if v < 90 then ignore (Al.insert_sorted fl v)
          | MPop -> (
            ignore (Ll.pop_first bx);
            ignore (Al.pop_first fl)));
          if Ll.to_list bx <> Al.to_list fl then Some "contents diverged"
          else None);
  }

let test_mutation_caught () =
  let ops =
    Harness.script_of_seed mutated_spec ~seed:1 ~len:200
  in
  Alcotest.(check bool) "mutant caught" true (Harness.fails mutated_spec ops);
  let small = Harness.shrink mutated_spec ops in
  Alcotest.(check bool) "shrunk script still fails" true
    (Harness.fails mutated_spec small);
  if List.length small > 20 then
    Alcotest.failf "shrunk script too large: %d ops" (List.length small)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "horse_fault"
    [
      ( "determinism",
        [
          Alcotest.test_case "byte-identical replay" `Quick
            test_replay_determinism;
          Alcotest.test_case "zero rate is inert" `Quick
            test_zero_rate_is_inert;
          Alcotest.test_case "faults experiment jobs-invariant" `Slow
            test_faults_experiment_jobs_invariant;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "crash during resume" `Quick
            test_resume_crash_consistency;
          Alcotest.test_case "latency identity under faults" `Quick
            test_latency_identity_under_faults;
          Alcotest.test_case "failed trigger is a no-op" `Quick
            test_failed_trigger_is_noop;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "ladder reaches cold" `Quick
            test_fallback_ladder_reaches_cold;
          Alcotest.test_case "total chaos terminates" `Quick
            test_total_chaos_terminates;
          Alcotest.test_case "backoff charge visible mid-ladder" `Quick
            test_backoff_charged_visible_midladder;
        ] );
      ( "workflow",
        [
          Alcotest.test_case "mid-chain crash fails downstream only" `Quick
            test_midchain_crash_fails_downstream_only;
          Alcotest.test_case "fused segment rides the ladder once" `Quick
            test_fused_segment_rides_ladder_once;
        ] );
      ( "harness",
        [ Alcotest.test_case "mutation caught" `Quick test_mutation_caught ] );
    ]
