(* Cross-module integration scenarios: each test drives several
   libraries together the way a deployment would, then checks global
   invariants (queue sortedness, P²SM freshness, metric consistency,
   no stuck invocations). *)

module Engine = Horse_sim.Engine
module Time = Horse_sim.Time_ns
module Metrics = Horse_sim.Metrics
module Topology = Horse_cpu.Topology
module Scheduler = Horse_sched.Scheduler
module Runqueue = Horse_sched.Runqueue
module Executor = Horse_sched.Cpu_executor
module Vcpu = Horse_sched.Vcpu
module Al = Horse_psm.Arena_list
module Sandbox = Horse_vmm.Sandbox
module Vmm = Horse_vmm.Vmm
module Api = Horse_vmm.Api
module Json = Horse_vmm.Json
module Platform = Horse_faas.Platform
module Function_def = Horse_faas.Function_def
module Cluster = Horse_faas.Cluster
module Category = Horse_workload.Category

let small_topology = Topology.create ~sockets:1 ~cores_per_socket:8 ()

(* ------------------------------------------------------------------ *)
(* Scenario 1: HORSE pause/resume interleaved with real execution      *)
(* churn on the same ull_runqueue.                                     *)
(* ------------------------------------------------------------------ *)

let test_psm_stays_fresh_under_execution_churn () =
  let engine = Engine.create ~seed:41 () in
  let scheduler = Scheduler.create ~ull_count:1 ~topology:small_topology () in
  let metrics = Metrics.create () in
  let vmm = Vmm.create ~jitter:0.0 ~scheduler ~metrics () in
  let executor =
    Executor.create_with_context_switch ~engine ~scheduler
      ~context_switch:(Time.span_ns 200) ()
  in
  let ull = List.hd (Scheduler.ull_runqueues scheduler) in
  (* two uLL sandboxes cycling through HORSE pause/resume *)
  let sandboxes =
    List.init 2 (fun i ->
        let sb = Sandbox.create ~id:i ~vcpus:3 ~memory_mb:512 ~ull:true () in
        ignore (Vmm.boot vmm sb);
        ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb);
        sb)
  in
  (* execution churn: free-standing work items rotate through the ull
     queue with 1 µs timeslices while the sandboxes are paused *)
  let completions = ref 0 in
  for worker = 10 to 13 do
    Executor.submit executor ~queue:ull
      ~vcpu:(Vcpu.create ~sandbox:worker ~index:0 ())
      ~work:(Time.span_us 20.0)
      ~on_done:(fun _ -> incr completions)
  done;
  (* meanwhile, resume and re-pause the sandboxes repeatedly *)
  let cycle = ref 0 in
  let rec churn sim =
    incr cycle;
    List.iter
      (fun sb ->
        match Sandbox.state sb with
        | Sandbox.Paused -> ignore (Vmm.resume vmm sb)
        | Sandbox.Running -> ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb)
        | Sandbox.Created | Sandbox.Booting | Sandbox.Stopped
        | Sandbox.Crashed -> ())
      sandboxes;
    if !cycle < 12 then ignore (Engine.schedule sim ~after:(Time.span_us 7.0) churn)
  in
  ignore (Engine.schedule engine ~after:(Time.span_us 3.0) churn);
  Engine.run engine;
  Alcotest.(check int) "all work completed" 4 !completions;
  Alcotest.(check bool) "ull queue sorted" true (Al.is_sorted (Runqueue.queue ull));
  Alcotest.(check int) "12 churn cycles ran" 12 !cycle;
  (* both sandboxes must still resume correctly after all the churn *)
  List.iter
    (fun sb ->
      if Sandbox.state sb = Sandbox.Paused then ignore (Vmm.resume vmm sb);
      Alcotest.(check bool) "running" true (Sandbox.state sb = Sandbox.Running))
    sandboxes;
  Alcotest.(check bool) "maintenance events flowed" true
    (Metrics.counter metrics "psm.maintenance_events" > 0)

(* ------------------------------------------------------------------ *)
(* Scenario 2: a fleet under an Azure-shaped storm, API-provisioned    *)
(* ------------------------------------------------------------------ *)

let test_fleet_under_trace_storm () =
  let engine = Engine.create ~seed:43 () in
  let cluster =
    Cluster.create ~servers:3 ~routing:Cluster.Warm_first
      ~topology:small_topology ~seed:43 ~engine ()
  in
  Cluster.register cluster
    (Function_def.create ~name:"fw" ~vcpus:1 ~memory_mb:512
       ~exec:(Function_def.Ull Category.Cat1) ());
  Cluster.provision cluster ~name:"fw" ~total:6 ~strategy:Sandbox.Horse;
  let rng = Horse_sim.Rng.create ~seed:44 in
  let arrivals =
    Horse_trace.Arrivals.poisson_process ~rng ~rate_per_s:500.0
      ~duration:(Time.span_s 2.0)
  in
  let fallbacks = ref 0 in
  List.iter
    (fun offset ->
      ignore
        (Engine.schedule engine ~after:offset (fun _ ->
             match
               Cluster.trigger cluster ~name:"fw"
                 ~mode:(Platform.Warm Sandbox.Horse) ()
             with
             | Cluster.Accepted _ | Cluster.Queued | Cluster.Forwarded _ -> ()
             | Cluster.Rejected _ ->
               incr fallbacks;
               ignore (Cluster.trigger cluster ~name:"fw" ~mode:Platform.Cold ()))))
    arrivals;
  Engine.run engine;
  let records = Cluster.records cluster in
  Alcotest.(check int) "every trigger completed"
    (List.length arrivals)
    (List.length records);
  Alcotest.(check int) "nothing live" 0 (Cluster.live_invocations cluster);
  Alcotest.(check int) "pool restored" 6 (Cluster.pool_size cluster ~name:"fw");
  (* warm-first routing keeps the fast path dominant *)
  let warm =
    List.length
      (List.filter
         (fun (_, r) ->
           match r.Platform.mode with
           | Platform.Warm Sandbox.Horse -> true
           | Platform.Warm _ | Platform.Cold | Platform.Restore -> false)
         records)
  in
  Alcotest.(check bool)
    (Printf.sprintf "horse path dominates (%d/%d, %d fallbacks)" warm
       (List.length records) !fallbacks)
    true
    (float_of_int warm > 0.9 *. float_of_int (List.length records))

(* ------------------------------------------------------------------ *)
(* Scenario 3: lifecycle driven entirely through the management API    *)
(* ------------------------------------------------------------------ *)

let test_api_driven_fleet () =
  let scheduler = Scheduler.create ~ull_count:2 ~topology:small_topology () in
  let vmm =
    Vmm.create ~jitter:0.0 ~scheduler ~metrics:(Metrics.create ()) ()
  in
  let server = Api.Server.create ~vmm () in
  let request meth path body = Api.Server.handle server { Api.meth; path; body } in
  let expect_ok name (response : Api.response) =
    if response.Api.status >= 300 then
      Alcotest.failf "%s failed: %d %s" name response.Api.status
        (Json.to_string response.Api.body)
  in
  (* configure and start 4 uLL VMs over the wire *)
  for i = 0 to 3 do
    let vm = Printf.sprintf "/vms/vm%d" i in
    expect_ok "config"
      (request Api.Put (vm ^ "/config")
         {|{"vcpu_count": 2, "mem_size_mib": 256, "ull": true}|});
    expect_ok "start"
      (request Api.Put (vm ^ "/actions") {|{"action_type": "InstanceStart"}|})
  done;
  Alcotest.(check int) "4 registered" 4 (Api.Server.vm_count server);
  (* pause the whole fleet with HORSE, resume it twice *)
  for _round = 1 to 2 do
    for i = 0 to 3 do
      expect_ok "pause"
        (request Api.Patch
           (Printf.sprintf "/vms/vm%d/state" i)
           {|{"state": "Paused", "strategy": "horse"}|})
    done;
    for i = 0 to 3 do
      let response =
        request Api.Patch
          (Printf.sprintf "/vms/vm%d/state" i)
          {|{"state": "Resumed"}|}
      in
      expect_ok "resume" response;
      match Option.bind (Json.member "resume_ns" response.Api.body) Json.to_int with
      | Some ns ->
        Alcotest.(check bool) "fast resume over the API" true (ns < 250)
      | None -> Alcotest.fail "resume_ns missing"
    done
  done;
  (* every ull queue involved is still sorted *)
  List.iter
    (fun q ->
      Alcotest.(check bool) "sorted" true (Al.is_sorted (Runqueue.queue q)))
    (Scheduler.ull_runqueues scheduler)

(* ------------------------------------------------------------------ *)
(* Scenario 4: snapshot round-trip feeding the boot-phase model        *)
(* ------------------------------------------------------------------ *)

let test_snapshot_to_boot_pipeline () =
  let module Snapshot = Horse_vmm.Snapshot in
  let module Boot = Horse_vmm.Boot in
  (* a "runtime-initialised" guest image: some pages written *)
  let memory = Snapshot.Memory.create ~size_mb:64 in
  for page = 0 to 511 do
    Snapshot.Memory.write memory ~page ~value:(page * 3)
  done;
  let snap = Snapshot.capture memory in
  let report = Snapshot.restore snap ~mode:Snapshot.Working_set in
  (* the restore the boot model prices must match the snapshot model's *)
  let restore_span = report.Snapshot.restore_latency in
  let boot_cost =
    Boot.cost ~snapshot_restore:restore_span Boot.firecracker_nodejs
      (Boot.Resume_after Boot.Runtime_init)
  in
  (* restore + code load + warmup *)
  Alcotest.(check int) "composed latency"
    (Time.span_to_ns restore_span + 210_000_000 + 115_000_000)
    (Time.span_to_ns boot_cost);
  (* and the memory really is the captured one *)
  Alcotest.(check int) "page contents" (100 * 3)
    (Snapshot.Memory.read report.Snapshot.memory ~page:100)

(* ------------------------------------------------------------------ *)
(* Scenario 5: determinism across the whole platform stack             *)
(* ------------------------------------------------------------------ *)

let test_full_stack_determinism () =
  let run () =
    let engine = Engine.create ~seed:77 () in
    let platform =
      Platform.create ~topology:small_topology ~seed:77 ~engine ()
    in
    Platform.register platform
      (Function_def.create ~name:"nat" ~vcpus:2 ~memory_mb:512
         ~exec:(Function_def.Ull Category.Cat2) ());
    Platform.provision platform ~name:"nat" ~count:2 ~strategy:Sandbox.Horse;
    for i = 0 to 49 do
      ignore
        (Engine.schedule engine
           ~after:(Time.span_us (float_of_int i *. 97.0))
           (fun _ ->
             Platform.trigger platform ~name:"nat"
               ~mode:(Platform.Warm Sandbox.Horse) ()))
    done;
    Engine.run engine;
    List.map
      (fun r ->
        ( Time.to_ns r.Platform.triggered_at,
          Time.span_to_ns (Platform.record_total r) ))
      (Platform.records platform)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same cardinality" (List.length a) (List.length b);
  List.iter2
    (fun (t1, l1) (t2, l2) ->
      Alcotest.(check int) "same trigger time" t1 t2;
      Alcotest.(check int) "same latency" l1 l2)
    a b

let () =
  Alcotest.run "horse_integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "P2SM fresh under execution churn" `Quick
            test_psm_stays_fresh_under_execution_churn;
          Alcotest.test_case "fleet under trace storm" `Quick
            test_fleet_under_trace_storm;
          Alcotest.test_case "API-driven fleet" `Quick test_api_driven_fleet;
          Alcotest.test_case "snapshot-to-boot pipeline" `Quick
            test_snapshot_to_boot_pipeline;
          Alcotest.test_case "full-stack determinism" `Quick
            test_full_stack_determinism;
        ] );
    ]
