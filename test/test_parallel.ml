(* Tests for Horse_parallel: work-stealing deque semantics, pool
   lifecycle / result ordering / exception propagation, deterministic
   seed splitting, and the headline guarantee that parallel
   experiment sweeps are bit-identical to sequential ones. *)

module Deque = Horse_parallel.Deque
module Pool = Horse_parallel.Pool
module Rng = Horse_sim.Rng
module E = Horse.Experiments

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let test_deque_owner_lifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Deque.length d);
  Alcotest.(check (list (option int)))
    "pop newest first"
    [ Some 3; Some 2; Some 1; None ]
    (List.init 4 (fun _ -> Deque.pop d))

let test_deque_thief_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (list (option int)))
    "steal oldest first"
    [ Some 1; Some 2; Some 3; None ]
    (List.init 4 (fun _ -> Deque.steal d))

let test_deque_grows_both_ends () =
  let d = Deque.create () in
  (* far beyond the initial capacity, with interleaved consumption *)
  for i = 0 to 99 do
    Deque.push d i
  done;
  let stolen = List.init 50 (fun _ -> Option.get (Deque.steal d)) in
  Alcotest.(check (list int)) "stolen prefix in order" (List.init 50 Fun.id)
    stolen;
  for i = 100 to 149 do
    Deque.push d i
  done;
  Alcotest.(check int) "length tracks" 100 (Deque.length d);
  let popped = List.init 100 (fun _ -> Option.get (Deque.pop d)) in
  Alcotest.(check (list int))
    "popped suffix newest-first"
    (List.init 50 (fun i -> 149 - i) @ List.init 50 (fun i -> 99 - i))
    popped;
  Alcotest.(check (option int)) "empty" None (Deque.pop d)

(* ------------------------------------------------------------------ *)
(* Pool lifecycle & ordering                                           *)
(* ------------------------------------------------------------------ *)

let test_pool_lifecycle () =
  let pool = Pool.create ~jobs:4 () in
  Alcotest.(check int) "jobs" 4 (Pool.jobs pool);
  Alcotest.(check (list int)) "runs" [ 1; 2; 3 ]
    (Pool.run_list pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.run_list: pool is shut down") (fun () ->
      ignore (Pool.run_list pool [ (fun () -> 0) ]))

let test_pool_rejects_zero_jobs () =
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.create: jobs < 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

(* deliberately unbalanced tasks: completion order differs wildly
   from submission order, results must not *)
let skewed_square i x =
  let spin = Atomic.make 0 in
  for _ = 1 to (i mod 13) * 10_000 do
    Atomic.incr spin
  done;
  ignore (Atomic.get spin);
  x * x

let test_pool_map_preserves_order () =
  let xs = List.init 200 Fun.id in
  let expected = List.mapi skewed_square xs in
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int))
        "task order, not completion order" expected
        (Pool.map pool ~f:skewed_square xs))

let test_pool_jobs1_is_inline () =
  (* jobs = 1 must not spawn: tasks run on the calling domain *)
  let self = Domain.self () in
  Pool.with_pool ~jobs:1 (fun pool ->
      let domains =
        Pool.run_list pool (List.init 5 (fun _ () -> Domain.self ()))
      in
      List.iter
        (fun d -> Alcotest.(check bool) "same domain" true (d = self))
        domains)

let test_pool_nested_submission () =
  (* a task may itself fan out on the same pool (the submitter helps,
     so this must not deadlock even with more tasks than strands) *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let totals =
        Pool.map pool
          ~f:(fun i _ ->
            List.fold_left ( + ) 0
              (Pool.map pool ~f:(fun j _ -> (10 * i) + j) (List.init 8 Fun.id)))
          (List.init 4 Fun.id)
      in
      Alcotest.(check (list int)) "nested results"
        (List.init 4 (fun i -> (80 * i) + 28))
        totals)

(* ------------------------------------------------------------------ *)
(* Exception propagation                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let completed = Array.make 16 false in
      let task i () =
        if i = 11 then failwith "task-11"
        else if i = 5 then failwith "task-5"
        else completed.(i) <- true
      in
      (* the lowest-indexed failure wins, whatever the schedule *)
      Alcotest.check_raises "first failure by index" (Failure "task-5")
        (fun () -> ignore (Pool.run_list pool (List.init 16 task)));
      (* the batch settled: every non-failing task still ran *)
      Array.iteri
        (fun i done_ ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d settled" i)
            (i <> 5 && i <> 11) done_)
        completed;
      (* and the pool survives for the next batch *)
      Alcotest.(check (list int)) "pool still usable" [ 7 ]
        (Pool.run_list pool [ (fun () -> 7) ]))

let test_pool_exception_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.check_raises "inline too" (Failure "boom") (fun () ->
          ignore (Pool.run_list pool [ (fun () -> failwith "boom") ])))

(* ------------------------------------------------------------------ *)
(* Deterministic seed splitting                                        *)
(* ------------------------------------------------------------------ *)

let draw ~rng _i _x = Rng.int rng 1_000_000

let test_map_seeded_jobs_invariant () =
  let xs = List.init 64 Fun.id in
  let seq = Pool.with_pool ~jobs:1 (fun p -> Pool.map_seeded p ~seed:42 ~f:draw xs) in
  let par = Pool.with_pool ~jobs:4 (fun p -> Pool.map_seeded p ~seed:42 ~f:draw xs) in
  Alcotest.(check (list int)) "streams independent of jobs" seq par;
  let par' = Pool.with_pool ~jobs:4 (fun p -> Pool.map_seeded p ~seed:42 ~f:draw xs) in
  Alcotest.(check (list int)) "and reproducible" par par'

let test_map_seeded_streams_differ () =
  let xs = List.init 32 Fun.id in
  let draws =
    Pool.with_pool ~jobs:1 (fun p -> Pool.map_seeded p ~seed:7 ~f:draw xs)
  in
  let distinct = List.sort_uniq Int.compare draws in
  (* 32 six-digit draws colliding would be a broken derivation *)
  Alcotest.(check int) "per-index streams differ" (List.length draws)
    (List.length distinct)

let test_shared_pool () =
  let a = Pool.shared () and b = Pool.shared () in
  Alcotest.(check bool) "one process-wide pool" true (a == b);
  Alcotest.(check (list int)) "usable" [ 0; 1; 4; 9 ]
    (Pool.map a ~f:(fun i _ -> i * i) (List.init 4 Fun.id))

(* ------------------------------------------------------------------ *)
(* Chunked submission                                                  *)
(* ------------------------------------------------------------------ *)

let test_chunk_results_invariant () =
  (* chunking changes scheduling granularity, never results or order;
     use skewed tasks so chunks genuinely finish out of order *)
  let xs = List.init 100 Fun.id in
  let expected = List.mapi skewed_square xs in
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun chunk ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk %d" chunk)
            expected
            (Pool.map ~chunk pool ~f:skewed_square xs))
        [ 1; 7; 100; 1000 ])

let test_chunk_rejects_nonpositive () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "chunk < 1"
        (Invalid_argument "Pool.run_list: chunk < 1") (fun () ->
          ignore (Pool.run_list ~chunk:0 pool [ (fun () -> 1) ])))

let test_chunk_exception_lowest_index () =
  (* the lowest-indexed failure must win even when the failures land
     in different chunks on different workers *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let task i () = if i = 9 || i = 37 then failwith (string_of_int i) in
      List.iter
        (fun chunk ->
          Alcotest.check_raises
            (Printf.sprintf "chunk %d: first failure by index" chunk)
            (Failure "9")
            (fun () -> ignore (Pool.run_list ~chunk pool (List.init 64 task))))
        [ 1; 7; 64 ])

let test_map_seeded_chunk_invariant () =
  let xs = List.init 64 Fun.id in
  let reference =
    Pool.with_pool ~jobs:1 (fun p -> Pool.map_seeded p ~seed:42 ~f:draw xs)
  in
  Pool.with_pool ~jobs:4 (fun p ->
      List.iter
        (fun chunk ->
          Alcotest.(check (list int))
            (Printf.sprintf "chunk %d == sequential" chunk)
            reference
            (Pool.map_seeded ~chunk p ~seed:42 ~f:draw xs))
        [ 1; 7; 64 ])

(* ------------------------------------------------------------------ *)
(* Experiments: parallel == sequential, bit for bit                    *)
(* ------------------------------------------------------------------ *)

let test_table1_jobs_invariant () =
  List.iter
    (fun seed ->
      let sequential = E.table1 ~seed ~jobs:1 () in
      let parallel = E.table1 ~seed ~jobs:4 () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: jobs:4 == jobs:1" seed)
        true
        (sequential = parallel))
    [ 1; 42; 1337 ]

let test_table1_chunk_invariant () =
  (* chunked parallel submission must stay bit-identical to sequential
     for every seed and every granularity, including one chunk per
     task and everything in a single chunk *)
  List.iter
    (fun seed ->
      let sequential = E.table1 ~seed ~jobs:1 () in
      List.iter
        (fun chunk ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: chunk %d == sequential" seed chunk)
            true
            (sequential = E.table1 ~seed ~jobs:4 ~chunk ()))
        [ 1; 7; 1000 ])
    [ 1; 42; 1337 ]

let test_fig2_fig3_jobs_invariant () =
  let f2s = E.fig2 ~repeats:2 ~vcpus:[ 1; 8; 36 ] ~jobs:1 () in
  let f2p = E.fig2 ~repeats:2 ~vcpus:[ 1; 8; 36 ] ~jobs:3 () in
  Alcotest.(check bool) "fig2" true (f2s = f2p);
  let f3s = E.fig3 ~repeats:2 ~vcpus:[ 1; 8; 36 ] ~jobs:1 () in
  let f3p = E.fig3 ~repeats:2 ~vcpus:[ 1; 8; 36 ] ~jobs:4 () in
  Alcotest.(check bool) "fig3" true (f3s = f3p)

let test_overhead_colocation_jobs_invariant () =
  let os = E.overhead ~vcpus:[ 1; 8 ] ~jobs:1 () in
  let op = E.overhead ~vcpus:[ 1; 8 ] ~jobs:2 () in
  Alcotest.(check bool) "overhead" true (os = op);
  let cs = E.colocation ~duration_s:5.0 ~repeats:2 ~vcpus:[ 1; 36 ] ~jobs:1 () in
  let cp = E.colocation ~duration_s:5.0 ~repeats:2 ~vcpus:[ 1; 36 ] ~jobs:4 () in
  Alcotest.(check bool) "colocation" true (cs = cp)

(* ------------------------------------------------------------------ *)
(* P²SM's parallel merge on the shared pool                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Team: persistent barrier rounds                                     *)
(* ------------------------------------------------------------------ *)

module Team = Horse_parallel.Team

let test_team_runs_every_strand () =
  Team.with_team ~width:4 (fun team ->
      let hits = Array.make 4 0 in
      let rounds = 100 in
      for _ = 1 to rounds do
        (* each strand writes only its own slot; the barrier's
           happens-before makes the writes visible here *)
        Team.run team (fun w -> hits.(w) <- hits.(w) + 1)
      done;
      Alcotest.(check (list int))
        "every strand ran every round"
        [ rounds; rounds; rounds; rounds ]
        (Array.to_list hits);
      Alcotest.(check int) "rounds counted" rounds (Team.rounds team))

let test_team_width1_inline () =
  Team.with_team ~width:1 (fun team ->
      Alcotest.(check int) "no domains" 0 (Team.domains team);
      let ran = ref false in
      Team.run team (fun w ->
          Alcotest.(check int) "strand 0" 0 w;
          ran := true);
      Alcotest.(check bool) "ran inline" true !ran)

let test_team_worker_cap () =
  (* never more workers than strands-1 or cores-1: on this host that
     bound is what keeps barrier rounds off the context-switch path *)
  Team.with_team ~width:8 (fun team ->
      let cap = min 7 (max 0 (Domain.recommended_domain_count () - 1)) in
      Alcotest.(check int) "workers capped" cap (Team.domains team))

let test_team_exception_lowest_strand () =
  Team.with_team ~width:4 (fun team ->
      let survivors = Array.make 4 false in
      let raised =
        try
          Team.run team (fun w ->
              survivors.(w) <- true;
              if w = 1 || w = 3 then failwith (Printf.sprintf "strand %d" w));
          "none"
        with Failure m -> m
      in
      Alcotest.(check string) "lowest strand wins" "strand 1" raised;
      (* a failing strand must not stop the others from running *)
      Alcotest.(check (list bool))
        "all strands still ran"
        [ true; true; true; true ]
        (Array.to_list survivors);
      (* the team survives a failed round *)
      let ok = ref 0 in
      Team.run team (fun _ -> incr ok);
      Alcotest.(check int) "team reusable after failure" 4 !ok)

let test_team_shutdown_rejects_run () =
  let team = Team.create ~width:2 () in
  Team.run team ignore;
  Team.shutdown team;
  Team.shutdown team;
  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Team.run: team is shut down") (fun () ->
      Team.run team ignore)

let test_team_shared_cached () =
  let a = Team.shared ~width:3 and b = Team.shared ~width:3 in
  Alcotest.(check bool) "same team per width" true (a == b);
  Alcotest.(check bool)
    "distinct widths distinct teams" false
    (Team.shared ~width:2 == a)

let test_psm_merge_on_pool () =
  let module Al = Horse_psm.Arena_list in
  let module Psm = Horse_psm.Psm in
  let rng = Rng.create ~seed:99 in
  let sorted n = List.sort Int.compare (List.init n (fun _ -> Rng.int rng 1000)) in
  let source_values = sorted 36 and target_values = sorted 256 in
  let merged strategy =
    let arena = Al.create_arena ~compare:Int.compare () in
    let source = Al.of_sorted_list arena source_values in
    let target = Al.of_sorted_list arena target_values in
    let index = Psm.Index.build target in
    let plan = Psm.Plan.build ~source ~index in
    (match strategy with
    | `Sequential -> ignore (Psm.Plan.execute plan ~index ~source)
    | `Pool n -> ignore (Psm.Plan.execute_parallel ~domains:n plan ~index ~source));
    Al.to_list target
  in
  let reference = merged `Sequential in
  List.iter
    (fun n ->
      Alcotest.(check (list int))
        (Printf.sprintf "domains:%d == sequential" n)
        reference
        (merged (`Pool n)))
    [ 1; 2; 4; 8 ]

let () =
  Alcotest.run "horse_parallel"
    [
      ( "deque",
        [
          Alcotest.test_case "owner lifo" `Quick test_deque_owner_lifo;
          Alcotest.test_case "thief fifo" `Quick test_deque_thief_fifo;
          Alcotest.test_case "grows" `Quick test_deque_grows_both_ends;
        ] );
      ( "pool",
        [
          Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "rejects jobs<1" `Quick test_pool_rejects_zero_jobs;
          Alcotest.test_case "map order" `Quick test_pool_map_preserves_order;
          Alcotest.test_case "jobs=1 inline" `Quick test_pool_jobs1_is_inline;
          Alcotest.test_case "nested submission" `Quick
            test_pool_nested_submission;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "exception inline" `Quick
            test_pool_exception_inline;
          Alcotest.test_case "shared pool" `Quick test_shared_pool;
        ] );
      ( "chunking",
        [
          Alcotest.test_case "results invariant" `Quick
            test_chunk_results_invariant;
          Alcotest.test_case "rejects chunk<1" `Quick
            test_chunk_rejects_nonpositive;
          Alcotest.test_case "exception lowest index" `Quick
            test_chunk_exception_lowest_index;
          Alcotest.test_case "map_seeded invariant" `Quick
            test_map_seeded_chunk_invariant;
        ] );
      ( "seed-splitting",
        [
          Alcotest.test_case "jobs-invariant" `Quick
            test_map_seeded_jobs_invariant;
          Alcotest.test_case "streams differ" `Quick
            test_map_seeded_streams_differ;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table1 seeds 1/42/1337" `Slow
            test_table1_jobs_invariant;
          Alcotest.test_case "table1 chunks 1/7/n" `Slow
            test_table1_chunk_invariant;
          Alcotest.test_case "fig2+fig3" `Slow test_fig2_fig3_jobs_invariant;
          Alcotest.test_case "overhead+colocation" `Slow
            test_overhead_colocation_jobs_invariant;
        ] );
      ( "team",
        [
          Alcotest.test_case "every strand every round" `Quick
            test_team_runs_every_strand;
          Alcotest.test_case "width=1 inline" `Quick test_team_width1_inline;
          Alcotest.test_case "worker cap" `Quick test_team_worker_cap;
          Alcotest.test_case "exception lowest strand" `Quick
            test_team_exception_lowest_strand;
          Alcotest.test_case "shutdown" `Quick test_team_shutdown_rejects_run;
          Alcotest.test_case "shared cache" `Quick test_team_shared_cached;
        ] );
      ( "psm",
        [ Alcotest.test_case "merge on pool" `Quick test_psm_merge_on_pool ] );
    ]
