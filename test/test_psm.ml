(* Tests for horse_psm: the boxed reference list, the flat arena list
   that replaced it on the hot path, the reference merges and P²SM
   itself, including the incremental-maintenance oracle and the
   arena-vs-reference trace-equality scripts. *)

module Ll = Horse_psm.Linked_list
module Al = Horse_psm.Arena_list
module Si = Horse_psm.Sorted_intf
module Psm = Horse_psm.Psm
module Reference = Horse_psm.Reference

let icmp = Int.compare

let make xs = Ll.of_sorted_list ~compare:icmp xs

let amake xs = Al.of_sorted_list (Al.create_arena ~compare:icmp ()) xs

let check_list = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Linked_list unit tests (the reference oracle, unchanged)            *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  let t = Ll.create ~compare:icmp () in
  Alcotest.(check int) "length" 0 (Ll.length t);
  Alcotest.(check bool) "empty" true (Ll.is_empty t);
  check_list "to_list" [] (Ll.to_list t);
  Alcotest.(check bool) "sorted" true (Ll.is_sorted t)

let test_insert_order () =
  let t = Ll.create ~compare:icmp () in
  List.iter (fun x -> ignore (Ll.insert_sorted t x)) [ 5; 1; 3; 2; 4 ];
  check_list "sorted result" [ 1; 2; 3; 4; 5 ] (Ll.to_list t);
  Alcotest.(check int) "length" 5 (Ll.length t)

let test_insert_steps () =
  let t = make [ 10; 20; 30 ] in
  let _, s0 = Ll.insert_sorted t 5 in
  Alcotest.(check int) "head insert walks 0" 0 s0;
  let _, s1 = Ll.insert_sorted t 25 in
  Alcotest.(check int) "mid insert walks 3" 3 s1;
  let _, s2 = Ll.insert_sorted t 99 in
  Alcotest.(check int) "tail insert walks 5" 5 s2

let test_insert_stable () =
  (* Equal keys: later insertions land after earlier ones. *)
  let t = Ll.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) () in
  List.iter
    (fun x -> ignore (Ll.insert_sorted t x))
    [ (1, "a"); (1, "b"); (1, "c") ];
  Alcotest.(check (list string))
    "FIFO among equals" [ "a"; "b"; "c" ]
    (List.map snd (Ll.to_list t))

let test_remove_node () =
  let t = make [ 1; 2; 3; 4 ] in
  let node = Ll.nth_node t 2 in
  let steps = Ll.remove_node t node in
  Alcotest.(check int) "walked to third" 2 steps;
  check_list "removed" [ 1; 2; 4 ] (Ll.to_list t);
  Alcotest.check_raises "second removal" Not_found (fun () ->
      ignore (Ll.remove_node t node))

let test_pop_first () =
  let t = make [ 7; 8 ] in
  Alcotest.(check (option int)) "pop 7" (Some 7) (Ll.pop_first t);
  Alcotest.(check (option int)) "pop 8" (Some 8) (Ll.pop_first t);
  Alcotest.(check (option int)) "pop empty" None (Ll.pop_first t)

let test_of_sorted_rejects_unsorted () =
  Alcotest.check_raises "unsorted input"
    (Invalid_argument "Linked_list.of_sorted_list: input not sorted")
    (fun () -> ignore (make [ 3; 1 ]))

let test_nth_node () =
  let t = make [ 4; 5; 6 ] in
  Alcotest.(check int) "nth 0" 4 (Ll.value (Ll.nth_node t 0));
  Alcotest.(check int) "nth 2" 6 (Ll.value (Ll.nth_node t 2));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Linked_list.nth_node: out of range") (fun () ->
      ignore (Ll.nth_node t 3))

(* ------------------------------------------------------------------ *)
(* Arena_list unit tests                                               *)
(* ------------------------------------------------------------------ *)

let test_arena_empty () =
  let t = Al.create (Al.create_arena ~compare:icmp ()) in
  Alcotest.(check int) "length" 0 (Al.length t);
  Alcotest.(check bool) "empty" true (Al.is_empty t);
  check_list "to_list" [] (Al.to_list t);
  Alcotest.(check bool) "sorted" true (Al.is_sorted t);
  Alcotest.(check bool) "first is nil" true (Al.is_nil (Al.first t))

let test_arena_insert_order () =
  let t = Al.create (Al.create_arena ~compare:icmp ()) in
  List.iter (fun x -> ignore (Al.insert_sorted t x)) [ 5; 1; 3; 2; 4 ];
  check_list "sorted result" [ 1; 2; 3; 4; 5 ] (Al.to_list t);
  Alcotest.(check int) "length" 5 (Al.length t);
  Alcotest.(check bool) "invariants" true (Al.is_sorted t)

let test_arena_insert_steps () =
  (* Must report exactly the walk counts of the boxed oracle. *)
  let t = amake [ 10; 20; 30 ] in
  let _, s0 = Al.insert_sorted t 5 in
  Alcotest.(check int) "head insert walks 0" 0 s0;
  let _, s1 = Al.insert_sorted t 25 in
  Alcotest.(check int) "mid insert walks 3" 3 s1;
  let _, s2 = Al.insert_sorted t 99 in
  Alcotest.(check int) "tail insert walks 5" 5 s2

let test_arena_insert_stable () =
  let t =
    Al.create (Al.create_arena ~compare:(fun (a, _) (b, _) -> icmp a b) ())
  in
  List.iter
    (fun x -> ignore (Al.insert_sorted t x))
    [ (1, "a"); (1, "b"); (1, "c") ];
  Alcotest.(check (list string))
    "FIFO among equals" [ "a"; "b"; "c" ]
    (List.map snd (Al.to_list t))

let test_arena_remove_node () =
  let t = amake [ 1; 2; 3; 4 ] in
  let node = Al.nth t 2 in
  let steps = Al.remove_node t node in
  Alcotest.(check int) "reports position" 2 steps;
  check_list "removed" [ 1; 2; 4 ] (Al.to_list t);
  Alcotest.(check bool) "invariants" true (Al.is_sorted t);
  Alcotest.check_raises "stale handle detected" Not_found (fun () ->
      ignore (Al.remove_node t node))

let test_arena_pop_first () =
  let t = amake [ 7; 8 ] in
  Alcotest.(check (option int)) "pop 7" (Some 7) (Al.pop_first t);
  Alcotest.(check (option int)) "pop 8" (Some 8) (Al.pop_first t);
  Alcotest.(check (option int)) "pop empty" None (Al.pop_first t)

let test_arena_of_sorted_rejects_unsorted () =
  Alcotest.check_raises "unsorted input"
    (Invalid_argument "Arena_list.of_sorted_list: input not sorted")
    (fun () -> ignore (amake [ 3; 1 ]))

let test_arena_nth_position () =
  let t = amake [ 4; 5; 6 ] in
  Alcotest.(check int) "nth 0" 4 (Al.value t (Al.nth t 0));
  Alcotest.(check int) "nth 2" 6 (Al.value t (Al.nth t 2));
  Alcotest.(check int) "position of nth 1" 1 (Al.position t (Al.nth t 1));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Arena_list.nth: out of range") (fun () ->
      ignore (Al.nth t 3))

let test_arena_two_lists_shared () =
  (* Two lists in one arena stay independent; a foreign handle is
     rejected. *)
  let arena = Al.create_arena ~compare:icmp () in
  let a = Al.create arena and b = Al.create arena in
  List.iter (fun x -> ignore (Al.insert_sorted a x)) [ 3; 1; 5 ];
  List.iter (fun x -> ignore (Al.insert_sorted b x)) [ 4; 2 ];
  check_list "a" [ 1; 3; 5 ] (Al.to_list a);
  check_list "b" [ 2; 4 ] (Al.to_list b);
  let ha = Al.nth a 1 in
  Alcotest.check_raises "foreign handle" Not_found (fun () ->
      ignore (Al.value b ha));
  ignore (Al.remove_node a ha);
  check_list "a after remove" [ 1; 5 ] (Al.to_list a);
  check_list "b untouched" [ 2; 4 ] (Al.to_list b);
  Alcotest.(check bool) "a sorted" true (Al.is_sorted a);
  Alcotest.(check bool) "b sorted" true (Al.is_sorted b)

let test_arena_growth () =
  (* Push far past the initial capacity; mix in removals. *)
  let t = Al.create (Al.create_arena ~capacity:4 ~compare:icmp ()) in
  for i = 0 to 199 do
    ignore (Al.insert_sorted t ((i * 37) mod 100))
  done;
  for _ = 1 to 50 do
    ignore (Al.pop_first t)
  done;
  Alcotest.(check int) "length" 150 (Al.length t);
  Alcotest.(check bool) "invariants" true (Al.is_sorted t)

let test_arena_handles_survive_merge () =
  (* After a P²SM merge the source's handles are re-owned by the
     target: still valid, same values, positions now in the target. *)
  let arena = Al.create_arena ~compare:icmp () in
  let src = Al.of_sorted_list arena [ 2; 6 ]
  and tgt = Al.of_sorted_list arena [ 1; 5; 9 ] in
  let h2 = Al.nth src 0 and h6 = Al.nth src 1 in
  let idx = Psm.Index.build tgt in
  let plan = Psm.Plan.build ~source:src ~index:idx in
  ignore (Psm.Plan.execute plan ~index:idx ~source:src);
  check_list "merged" [ 1; 2; 5; 6; 9 ] (Al.to_list tgt);
  Alcotest.(check bool) "src empty" true (Al.is_empty src);
  Alcotest.(check bool) "h2 now in target" true (Al.mem tgt h2);
  Alcotest.(check int) "h2 value" 2 (Al.value tgt h2);
  Alcotest.(check int) "h2 position" 1 (Al.position tgt h2);
  Alcotest.(check int) "h6 position" 3 (Al.position tgt h6);
  Alcotest.(check bool) "no longer in source" false (Al.mem src h2)

(* ------------------------------------------------------------------ *)
(* Reference merges                                                    *)
(* ------------------------------------------------------------------ *)

let test_merge_values () =
  check_list "simple"
    [ 1; 2; 3; 4; 5; 6 ]
    (Reference.merge_values ~compare:icmp [ 2; 4; 6 ] [ 1; 3; 5 ]);
  check_list "empty a" [ 1; 2 ] (Reference.merge_values ~compare:icmp [] [ 1; 2 ]);
  check_list "empty b" [ 1; 2 ] (Reference.merge_values ~compare:icmp [ 1; 2 ] [])

let test_merge_values_stability () =
  (* Among equals, target (second argument) elements come first. *)
  let a = [ (1, "A") ] and b = [ (1, "B") ] in
  let merged =
    Reference.merge_values ~compare:(fun (x, _) (y, _) -> Int.compare x y) a b
  in
  Alcotest.(check (list string)) "b first" [ "B"; "A" ] (List.map snd merged)

let test_insert_each () =
  let source = make [ 2; 4 ] and target = make [ 1; 3; 5 ] in
  let walked = Reference.insert_each ~source ~target in
  check_list "merged" [ 1; 2; 3; 4; 5 ] (Ll.to_list target);
  Alcotest.(check bool) "source drained" true (Ll.is_empty source);
  Alcotest.(check bool) "walked some" true (walked > 0)

(* ------------------------------------------------------------------ *)
(* P²SM: Index                                                         *)
(* ------------------------------------------------------------------ *)

let test_index_build () =
  let b = amake [ 10; 20; 30 ] in
  let idx = Psm.Index.build b in
  Alcotest.(check int) "length" 3 (Psm.Index.length idx);
  Alcotest.(check bool) "consistent" true (Psm.Index.is_consistent idx);
  Alcotest.(check bool) "anchor 0 is head" true
    (Al.is_nil (Psm.Index.anchor idx 0));
  Alcotest.(check int) "anchor 2 value" 20 (Al.value b (Psm.Index.anchor idx 2))

let test_index_find_key () =
  let b = amake [ 10; 20; 20; 30 ] in
  let idx = Psm.Index.build b in
  Alcotest.(check int) "below all" 0 (Psm.Index.find_key idx 5);
  Alcotest.(check int) "equal goes after" 3 (Psm.Index.find_key idx 20);
  Alcotest.(check int) "between" 3 (Psm.Index.find_key idx 25);
  Alcotest.(check int) "above all" 4 (Psm.Index.find_key idx 99)

let test_index_incremental () =
  let b = amake [ 10; 30 ] in
  let idx = Psm.Index.build b in
  let node, pos = Al.insert_sorted b 20 in
  Psm.Index.note_insert idx ~pos node;
  Alcotest.(check bool) "after insert" true (Psm.Index.is_consistent idx);
  let victim = Al.nth b 0 in
  let pos = Al.remove_node b victim in
  Psm.Index.note_remove idx ~pos;
  Alcotest.(check bool) "after remove" true (Psm.Index.is_consistent idx)

let test_index_rebuild () =
  let b = amake [ 1; 2 ] in
  let idx = Psm.Index.build b in
  ignore (Al.insert_sorted b 3);
  Alcotest.(check bool) "stale" false (Psm.Index.is_consistent idx);
  Psm.Index.rebuild idx;
  Alcotest.(check bool) "fresh" true (Psm.Index.is_consistent idx)

(* ------------------------------------------------------------------ *)
(* P²SM: Plan build + execute                                          *)
(* ------------------------------------------------------------------ *)

let run_merge ?(binary = false) ?(parallel = 0) a_vals b_vals =
  let arena = Al.create_arena ~compare:icmp () in
  let a = Al.of_sorted_list arena a_vals
  and b = Al.of_sorted_list arena b_vals in
  let idx = Psm.Index.build b in
  let plan =
    if binary then Psm.Plan.build_binary ~source:a ~index:idx
    else Psm.Plan.build ~source:a ~index:idx
  in
  let stats =
    if parallel > 0 then
      Psm.Plan.execute_parallel ~domains:parallel plan ~index:idx ~source:a
    else Psm.Plan.execute plan ~index:idx ~source:a
  in
  (Al.to_list b, Al.length b, Al.is_empty a, stats)

let test_plan_simple_merge () =
  let merged, len, drained, stats = run_merge [ 2; 4; 6 ] [ 1; 3; 5 ] in
  check_list "merged" [ 1; 2; 3; 4; 5; 6 ] merged;
  Alcotest.(check int) "length" 6 len;
  Alcotest.(check bool) "source drained" true drained;
  Alcotest.(check int) "threads" 3 stats.Psm.Plan.threads;
  Alcotest.(check int) "spliced" 3 stats.Psm.Plan.spliced

let test_plan_merge_empty_target () =
  let merged, _, _, stats = run_merge [ 1; 2; 3 ] [] in
  check_list "merged" [ 1; 2; 3 ] merged;
  Alcotest.(check int) "one segment" 1 stats.Psm.Plan.threads

let test_plan_merge_empty_source () =
  let merged, _, _, stats = run_merge [] [ 1; 2 ] in
  check_list "unchanged" [ 1; 2 ] merged;
  Alcotest.(check int) "no threads" 0 stats.Psm.Plan.threads

let test_plan_merge_all_before () =
  let merged, _, _, _ = run_merge [ 1; 2 ] [ 10; 20 ] in
  check_list "prefix splice" [ 1; 2; 10; 20 ] merged

let test_plan_merge_all_after () =
  let merged, _, _, _ = run_merge [ 30; 40 ] [ 10; 20 ] in
  check_list "suffix splice" [ 10; 20; 30; 40 ] merged

let test_plan_merge_equal_values () =
  (* equal elements: target's keep priority (come first) *)
  let merged, _, _, _ = run_merge [ 5; 5 ] [ 5 ] in
  check_list "ties" [ 5; 5; 5 ] merged;
  (* with tagged equal keys, the target element must end up first *)
  let kcmp (x, _) (y, _) = Int.compare x y in
  let arena = Al.create_arena ~compare:kcmp () in
  let a = Al.of_sorted_list arena [ (5, "a1"); (5, "a2") ]
  and b = Al.of_sorted_list arena [ (5, "b") ] in
  let idx = Psm.Index.build b in
  let plan = Psm.Plan.build ~source:a ~index:idx in
  ignore (Psm.Plan.execute plan ~index:idx ~source:a);
  Alcotest.(check (list string))
    "target first among equals" [ "b"; "a1"; "a2" ]
    (List.map snd (Al.to_list b))

let test_plan_binary_matches_linear () =
  let merged_lin, _, _, s1 = run_merge [ 1; 5; 9 ] [ 2; 4; 6; 8 ] in
  let merged_bin, _, _, s2 = run_merge ~binary:true [ 1; 5; 9 ] [ 2; 4; 6; 8 ] in
  check_list "same result" merged_lin merged_bin;
  Alcotest.(check int) "same threads" s1.Psm.Plan.threads s2.Psm.Plan.threads

let test_plan_parallel_merge () =
  let merged, _, drained, _ =
    run_merge ~parallel:4
      [ 1; 4; 4; 7; 11; 15 ]
      [ 2; 3; 5; 8; 9; 10; 12 ]
  in
  check_list "parallel == expected"
    (Reference.merge_values ~compare:icmp
       [ 1; 4; 4; 7; 11; 15 ]
       [ 2; 3; 5; 8; 9; 10; 12 ])
    merged;
  Alcotest.(check bool) "drained" true drained

let test_plan_stale_on_unseen_target_change () =
  let arena = Al.create_arena ~compare:icmp () in
  let a = Al.of_sorted_list arena [ 2 ]
  and b = Al.of_sorted_list arena [ 1; 3 ] in
  let idx = Psm.Index.build b in
  let plan = Psm.Plan.build ~source:a ~index:idx in
  ignore (Al.insert_sorted b 5) (* not reported to index/plan *);
  Alcotest.check_raises "stale" Psm.Stale (fun () ->
      ignore (Psm.Plan.execute plan ~index:idx ~source:a))

let test_plan_stale_on_double_execute () =
  let arena = Al.create_arena ~compare:icmp () in
  let a = Al.of_sorted_list arena [ 2 ]
  and b = Al.of_sorted_list arena [ 1; 3 ] in
  let idx = Psm.Index.build b in
  let plan = Psm.Plan.build ~source:a ~index:idx in
  ignore (Psm.Plan.execute plan ~index:idx ~source:a);
  Psm.Index.rebuild idx;
  Alcotest.check_raises "re-execute" Psm.Stale (fun () ->
      ignore (Psm.Plan.execute plan ~index:idx ~source:a))

(* ------------------------------------------------------------------ *)
(* P²SM: incremental maintenance                                       *)
(* ------------------------------------------------------------------ *)

let pair_in_arena a_vals b_vals =
  let arena = Al.create_arena ~compare:icmp () in
  (Al.of_sorted_list arena a_vals, Al.of_sorted_list arena b_vals)

let test_plan_target_insert_split () =
  (* source [2;4;6] vs target [5]: segment {2;4} at key 0, {6} at key 1.
     Inserting 3 into the target must split {2;4}. *)
  let a, b = pair_in_arena [ 2; 4; 6 ] [ 5 ] in
  let idx = Psm.Index.build b in
  let plan = Psm.Plan.build ~source:a ~index:idx in
  Alcotest.(check (list int)) "keys before" [ 0; 1 ] (Psm.Plan.keys plan);
  let node, pos = Al.insert_sorted b 3 in
  Psm.Plan.note_target_insert plan ~pos 3;
  Psm.Index.note_insert idx ~pos node;
  Alcotest.(check (list int)) "keys after" [ 0; 1; 2 ] (Psm.Plan.keys plan);
  Alcotest.(check bool) "consistent" true
    (Psm.Plan.is_consistent plan ~index:idx ~source:a);
  let stats = Psm.Plan.execute plan ~index:idx ~source:a in
  check_list "merged" [ 2; 3; 4; 5; 6 ] (Al.to_list b);
  Alcotest.(check int) "three segments" 3 stats.Psm.Plan.threads

let test_plan_target_remove_coalesce () =
  (* source [2;6] vs target [1;5;9]: keys 1 and 2.  Removing 5 must
     coalesce both segments onto key 1. *)
  let a, b = pair_in_arena [ 2; 6 ] [ 1; 5; 9 ] in
  let idx = Psm.Index.build b in
  let plan = Psm.Plan.build ~source:a ~index:idx in
  Alcotest.(check (list int)) "keys before" [ 1; 2 ] (Psm.Plan.keys plan);
  let victim = Al.nth b 1 in
  let pos = Al.remove_node b victim in
  Psm.Plan.note_target_remove plan ~pos;
  Psm.Index.note_remove idx ~pos;
  Alcotest.(check (list int)) "keys after" [ 1 ] (Psm.Plan.keys plan);
  Alcotest.(check bool) "consistent" true
    (Psm.Plan.is_consistent plan ~index:idx ~source:a);
  ignore (Psm.Plan.execute plan ~index:idx ~source:a);
  check_list "merged" [ 1; 2; 6; 9 ] (Al.to_list b)

let test_plan_source_insert () =
  let a, b = pair_in_arena [ 2; 8 ] [ 5 ] in
  let idx = Psm.Index.build b in
  let plan = Psm.Plan.build ~source:a ~index:idx in
  let node, _ = Al.insert_sorted a 3 in
  Psm.Plan.note_source_insert plan ~index:idx ~node;
  Alcotest.(check int) "total" 3 (Psm.Plan.total plan);
  Alcotest.(check bool) "consistent" true
    (Psm.Plan.is_consistent plan ~index:idx ~source:a);
  ignore (Psm.Plan.execute plan ~index:idx ~source:a);
  check_list "merged" [ 2; 3; 5; 8 ] (Al.to_list b)

let test_plan_source_remove () =
  let a, b = pair_in_arena [ 2; 3; 8 ] [ 5 ] in
  let idx = Psm.Index.build b in
  let plan = Psm.Plan.build ~source:a ~index:idx in
  let node = Al.nth a 1 in
  Psm.Plan.note_source_remove plan ~node;
  ignore (Al.remove_node a node);
  Alcotest.(check int) "total" 2 (Psm.Plan.total plan);
  Alcotest.(check bool) "consistent" true
    (Psm.Plan.is_consistent plan ~index:idx ~source:a);
  ignore (Psm.Plan.execute plan ~index:idx ~source:a);
  check_list "merged" [ 2; 5; 8 ] (Al.to_list b)

(* ------------------------------------------------------------------ *)
(* Trace equality: arena list vs the boxed oracle                      *)
(* ------------------------------------------------------------------ *)

(* Seeded random op scripts applied through the shared signature via
   the model-based harness: both implementations must behave
   identically at every step — same walk counts, same pop results,
   same contents after every op.  On divergence the harness shrinks
   the script and prints the replay seed. *)

type script_op = Ins of int | Rem of int | Pop

let show_script_op = function
  | Ins v -> Printf.sprintf "Ins %d" v
  | Rem i -> Printf.sprintf "Rem %d" i
  | Pop -> "Pop"

let trace_spec : script_op Harness.spec =
  {
    Harness.name = "flat arena list vs boxed oracle";
    gen =
      (fun st ->
        match Random.State.int st 10 with
        | 0 | 1 | 2 | 3 | 4 -> Ins (Random.State.int st 100)
        | 5 | 6 | 7 -> Rem (Random.State.int st 1000)
        | _ -> Pop);
    show = show_script_op;
    make =
      (fun () ->
        let bx = Si.Boxed.create ~compare:icmp () in
        let fl = Si.Flat.create ~compare:icmp () in
        let fail fmt = Printf.ksprintf Option.some fmt in
        fun op ->
          let step_diff =
            match op with
            | Ins v ->
              let _, sb = Si.Boxed.insert_sorted bx v in
              let _, sf = Si.Flat.insert_sorted fl v in
              if sb <> sf then
                fail "insert %d walked %d (boxed) vs %d (flat)" v sb sf
              else None
            | Rem i when Si.Boxed.length bx > 0 ->
              let p = i mod Si.Boxed.length bx in
              let sb = Si.Boxed.remove_node bx (Si.Boxed.nth bx p) in
              let sf = Si.Flat.remove_node fl (Si.Flat.nth fl p) in
              if sb <> sf then
                fail "remove @%d walked %d (boxed) vs %d (flat)" p sb sf
              else None
            | Rem _ -> None
            | Pop -> (
              match (Si.Boxed.pop_first bx, Si.Flat.pop_first fl) with
              | None, None -> None
              | Some b, Some f when b = f -> None
              | b, f ->
                let s = function
                  | Some v -> string_of_int v
                  | None -> "-"
                in
                fail "pop %s (boxed) vs %s (flat)" (s b) (s f))
          in
          match step_diff with
          | Some _ as d -> d
          | None ->
            if Si.Boxed.to_list bx <> Si.Flat.to_list fl then
              fail "contents diverged after %s" (show_script_op op)
            else if not (Si.Flat.is_sorted fl) then
              Some "flat list invariants broken"
            else None);
  }

let test_trace_equality seed () =
  Harness.check ~seeds:[ seed ] ~scripts:4 ~len:150 trace_spec

(* Same idea with P²SM merges in the script: the arena target absorbs
   random source lists through real plans while the oracle is rebuilt
   from Reference.merge_values. *)

type merge_op = Mins of int | Mrem of int | Mpop | Mmerge of int list

let merge_spec : merge_op Harness.spec =
  {
    Harness.name = "P2SM splice vs reference merge";
    gen =
      (fun st ->
        match Random.State.int st 10 with
        | 0 | 1 | 2 | 3 -> Mins (Random.State.int st 100)
        | 4 | 5 -> Mrem (Random.State.int st 1000)
        | 6 -> Mpop
        | _ ->
          let n = Random.State.int st 8 in
          Mmerge
            (List.sort icmp (List.init n (fun _ -> Random.State.int st 100))));
    show =
      (function
      | Mins v -> Printf.sprintf "Mins %d" v
      | Mrem i -> Printf.sprintf "Mrem %d" i
      | Mpop -> "Mpop"
      | Mmerge vs ->
        Printf.sprintf "Mmerge [%s]"
          (String.concat ";" (List.map string_of_int vs)));
    make =
      (fun () ->
        let arena = Al.create_arena ~compare:icmp () in
        let fl = Al.create arena in
        let bx = ref (Ll.create ~compare:icmp ()) in
        let fail fmt = Printf.ksprintf Option.some fmt in
        fun op ->
          let step_diff =
            match op with
            | Mins v ->
              let _, s_flat = Al.insert_sorted fl v in
              let _, s_boxed = Ll.insert_sorted !bx v in
              if s_flat <> s_boxed then
                fail "insert %d walked %d (boxed) vs %d (flat)" v s_boxed
                  s_flat
              else None
            | Mrem i when Al.length fl > 0 ->
              let p = i mod Al.length fl in
              let s_flat = Al.remove_node fl (Al.nth fl p) in
              let s_boxed = Ll.remove_node !bx (Ll.nth_node !bx p) in
              if s_flat <> s_boxed then
                fail "remove @%d walked %d (boxed) vs %d (flat)" p s_boxed
                  s_flat
              else None
            | Mrem _ -> None
            | Mpop ->
              let b = Ll.pop_first !bx and f = Al.pop_first fl in
              if b <> f then fail "pop diverged" else None
            | Mmerge vals ->
              let src = Al.of_sorted_list arena vals in
              let idx = Psm.Index.build fl in
              let plan = Psm.Plan.build ~source:src ~index:idx in
              ignore (Psm.Plan.execute plan ~index:idx ~source:src);
              bx :=
                Ll.of_sorted_list ~compare:icmp
                  (Reference.merge_values ~compare:icmp vals (Ll.to_list !bx));
              None
          in
          match step_diff with
          | Some _ as d -> d
          | None ->
            if Ll.length !bx <> Al.length fl then
              fail "length %d (boxed) vs %d (flat)" (Ll.length !bx)
                (Al.length fl)
            else if Ll.to_list !bx <> Al.to_list fl then
              Some "contents diverged"
            else if not (Al.is_sorted fl) then
              Some "arena list invariants broken"
            else None);
  }

let test_merge_script_equality seed () =
  Harness.check ~seeds:[ seed ] ~scripts:4 ~len:100 merge_spec

(* ------------------------------------------------------------------ *)
(* Skip list (the "better queue" alternative)                          *)
(* ------------------------------------------------------------------ *)

module Sl = Horse_psm.Skip_list

let test_skip_insert_sorted () =
  let t = Sl.create ~compare:icmp () in
  List.iter (fun x -> ignore (Sl.insert t x)) [ 5; 1; 9; 3; 7; 1 ];
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 5; 7; 9 ] (Sl.to_list t);
  Alcotest.(check int) "length" 6 (Sl.length t);
  Alcotest.(check bool) "consistent" true (Sl.is_consistent t)

let test_skip_stable () =
  let t = Sl.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) () in
  List.iter (fun x -> ignore (Sl.insert t x)) [ (1, "a"); (1, "b"); (1, "c") ];
  Alcotest.(check (list string)) "FIFO among equals" [ "a"; "b"; "c" ]
    (List.map snd (Sl.to_list t))

let test_skip_pop_min () =
  let t = Sl.of_list ~compare:icmp [ 4; 2; 8 ] in
  Alcotest.(check (option int)) "min" (Some 2) (Sl.pop_min t);
  Alcotest.(check (option int)) "next" (Some 4) (Sl.pop_min t);
  Alcotest.(check int) "length" 1 (Sl.length t);
  Alcotest.(check bool) "consistent" true (Sl.is_consistent t)

let test_skip_remove_first () =
  let t = Sl.of_list ~compare:icmp [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "removed" true (Sl.remove_first t (fun x -> x mod 2 = 0));
  Alcotest.(check (list int)) "2 gone" [ 1; 3; 4 ] (Sl.to_list t);
  Alcotest.(check bool) "no match" false (Sl.remove_first t (fun x -> x > 10));
  Alcotest.(check bool) "consistent" true (Sl.is_consistent t)

let test_skip_mem () =
  let t = Sl.of_list ~compare:icmp [ 10; 20; 30 ] in
  Alcotest.(check bool) "present" true (Sl.mem t 20);
  Alcotest.(check bool) "absent" false (Sl.mem t 25)

let test_skip_search_is_sublinear () =
  (* the whole point: inserting at a random position in a big skip
     list walks far fewer nodes than the linked list does *)
  let n = 4096 in
  let sl = Sl.create ~compare:icmp () in
  let ll = Ll.create ~compare:icmp () in
  let rng = ref 12345 in
  let next () =
    rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF;
    !rng mod 1_000_000
  in
  let sl_hops = ref 0 and ll_steps = ref 0 in
  for _ = 1 to n do
    let x = next () in
    sl_hops := !sl_hops + Sl.insert sl x;
    ll_steps := !ll_steps + snd (Ll.insert_sorted ll x)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hops %d << steps %d" !sl_hops !ll_steps)
    true
    (!sl_hops * 10 < !ll_steps);
  Alcotest.(check bool) "same contents" true (Sl.to_list sl = Ll.to_list ll)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let sorted_list_gen = QCheck2.Gen.(map (List.sort icmp) (list_size (0 -- 40) (0 -- 100)))

let prop_insert_sorted_invariant =
  QCheck2.Test.make ~name:"insert_sorted keeps the list sorted" ~count:300
    QCheck2.Gen.(list_size (0 -- 60) (0 -- 100))
    (fun xs ->
      let t = Ll.create ~compare:icmp () in
      List.iter (fun x -> ignore (Ll.insert_sorted t x)) xs;
      Ll.is_sorted t
      && Ll.length t = List.length xs
      && Ll.to_list t = List.sort icmp xs)

let prop_arena_insert_sorted_invariant =
  QCheck2.Test.make ~name:"arena insert_sorted keeps the list sorted"
    ~count:300
    QCheck2.Gen.(list_size (0 -- 60) (0 -- 100))
    (fun xs ->
      let t = Al.create (Al.create_arena ~compare:icmp ()) in
      List.iter (fun x -> ignore (Al.insert_sorted t x)) xs;
      Al.is_sorted t
      && Al.length t = List.length xs
      && Al.to_list t = List.sort icmp xs)

let prop_psm_equals_reference =
  QCheck2.Test.make ~name:"P²SM merge == reference merge" ~count:300
    QCheck2.Gen.(pair sorted_list_gen sorted_list_gen)
    (fun (a_vals, b_vals) ->
      let merged, _, drained, _ = run_merge a_vals b_vals in
      drained && merged = Reference.merge_values ~compare:icmp a_vals b_vals)

let prop_psm_binary_equals_linear =
  QCheck2.Test.make ~name:"binary precompute == linear precompute" ~count:300
    QCheck2.Gen.(pair sorted_list_gen sorted_list_gen)
    (fun (a_vals, b_vals) ->
      let m1, _, _, s1 = run_merge a_vals b_vals in
      let m2, _, _, s2 = run_merge ~binary:true a_vals b_vals in
      m1 = m2 && s1.Psm.Plan.threads = s2.Psm.Plan.threads)

let prop_psm_parallel_equals_sequential =
  QCheck2.Test.make ~name:"parallel splice == sequential splice" ~count:60
    QCheck2.Gen.(pair sorted_list_gen sorted_list_gen)
    (fun (a_vals, b_vals) ->
      let m1, _, _, _ = run_merge a_vals b_vals in
      let m2, _, _, _ = run_merge ~parallel:4 a_vals b_vals in
      m1 = m2)

(* Arbitrary mutation scripts: the incremental plan must always agree
   with a from-scratch rebuild, and the final merge must be correct. *)
type mutation = Target_insert of int | Target_remove of int | Source_insert of int

let mutation_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Target_insert v) (0 -- 100);
        map (fun i -> Target_remove i) (0 -- 1000);
        map (fun v -> Source_insert v) (0 -- 100);
      ])

let apply_mutation a b idx plan = function
  | Target_insert v ->
    let node, pos = Al.insert_sorted b v in
    Psm.Plan.note_target_insert plan ~pos v;
    Psm.Index.note_insert idx ~pos node
  | Target_remove i when Al.length b > 0 ->
    let node = Al.nth b (i mod Al.length b) in
    let pos = Al.remove_node b node in
    Psm.Plan.note_target_remove plan ~pos;
    Psm.Index.note_remove idx ~pos
  | Target_remove _ -> ()
  | Source_insert v ->
    let node, _ = Al.insert_sorted a v in
    Psm.Plan.note_source_insert plan ~index:idx ~node

let prop_incremental_maintenance =
  QCheck2.Test.make
    ~name:"incremental posA/arrayB == from-scratch after random mutations"
    ~count:300
    QCheck2.Gen.(
      triple sorted_list_gen sorted_list_gen (list_size (0 -- 25) mutation_gen))
    (fun (a_vals, b_vals, mutations) ->
      let a, b = pair_in_arena a_vals b_vals in
      let idx = Psm.Index.build b in
      let plan = Psm.Plan.build ~source:a ~index:idx in
      List.iter (apply_mutation a b idx plan) mutations;
      let expected =
        Reference.merge_values ~compare:icmp (Al.to_list a) (Al.to_list b)
      in
      Psm.Index.is_consistent idx
      && Psm.Plan.is_consistent plan ~index:idx ~source:a
      &&
      (ignore (Psm.Plan.execute plan ~index:idx ~source:a);
       Al.to_list b = expected))

let prop_skip_list_matches_sorted =
  QCheck2.Test.make
    ~name:"skip list == List.sort under random insert/remove scripts"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (0 -- 80) (0 -- 100))
        (list_size (0 -- 20) (0 -- 100)))
    (fun (inserts, removals) ->
      let t = Sl.create ~compare:icmp () in
      List.iter (fun x -> ignore (Sl.insert t x)) inserts;
      let expected = ref (List.sort icmp inserts) in
      List.iter
        (fun x ->
          let removed = Sl.remove_first t (fun y -> y = x) in
          let present = List.mem x !expected in
          if present then begin
            let rec drop = function
              | [] -> []
              | y :: rest -> if y = x then rest else y :: drop rest
            in
            expected := drop !expected
          end;
          if removed <> present then failwith "remove/mem disagreement")
        removals;
      Sl.is_consistent t && Sl.to_list t = !expected)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_insert_sorted_invariant;
      prop_arena_insert_sorted_invariant;
      prop_psm_equals_reference;
      prop_psm_binary_equals_linear;
      prop_psm_parallel_equals_sequential;
      prop_incremental_maintenance;
      prop_skip_list_matches_sorted;
    ]

let () =
  Alcotest.run "horse_psm"
    [
      ( "linked_list",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert keeps order" `Quick test_insert_order;
          Alcotest.test_case "insert reports steps" `Quick test_insert_steps;
          Alcotest.test_case "stable among equals" `Quick test_insert_stable;
          Alcotest.test_case "remove node" `Quick test_remove_node;
          Alcotest.test_case "pop first" `Quick test_pop_first;
          Alcotest.test_case "rejects unsorted input" `Quick
            test_of_sorted_rejects_unsorted;
          Alcotest.test_case "nth node" `Quick test_nth_node;
        ] );
      ( "arena_list",
        [
          Alcotest.test_case "empty" `Quick test_arena_empty;
          Alcotest.test_case "insert keeps order" `Quick
            test_arena_insert_order;
          Alcotest.test_case "insert reports steps" `Quick
            test_arena_insert_steps;
          Alcotest.test_case "stable among equals" `Quick
            test_arena_insert_stable;
          Alcotest.test_case "remove node" `Quick test_arena_remove_node;
          Alcotest.test_case "pop first" `Quick test_arena_pop_first;
          Alcotest.test_case "rejects unsorted input" `Quick
            test_arena_of_sorted_rejects_unsorted;
          Alcotest.test_case "nth and position" `Quick test_arena_nth_position;
          Alcotest.test_case "two lists share an arena" `Quick
            test_arena_two_lists_shared;
          Alcotest.test_case "growth" `Quick test_arena_growth;
          Alcotest.test_case "handles survive merge" `Quick
            test_arena_handles_survive_merge;
        ] );
      ( "reference",
        [
          Alcotest.test_case "merge values" `Quick test_merge_values;
          Alcotest.test_case "merge stability" `Quick test_merge_values_stability;
          Alcotest.test_case "insert each" `Quick test_insert_each;
        ] );
      ( "index",
        [
          Alcotest.test_case "build" `Quick test_index_build;
          Alcotest.test_case "find_key" `Quick test_index_find_key;
          Alcotest.test_case "incremental" `Quick test_index_incremental;
          Alcotest.test_case "rebuild" `Quick test_index_rebuild;
        ] );
      ( "plan",
        [
          Alcotest.test_case "simple merge" `Quick test_plan_simple_merge;
          Alcotest.test_case "empty target" `Quick test_plan_merge_empty_target;
          Alcotest.test_case "empty source" `Quick test_plan_merge_empty_source;
          Alcotest.test_case "all before" `Quick test_plan_merge_all_before;
          Alcotest.test_case "all after" `Quick test_plan_merge_all_after;
          Alcotest.test_case "equal values" `Quick test_plan_merge_equal_values;
          Alcotest.test_case "binary == linear" `Quick
            test_plan_binary_matches_linear;
          Alcotest.test_case "parallel merge" `Quick test_plan_parallel_merge;
          Alcotest.test_case "stale on unseen change" `Quick
            test_plan_stale_on_unseen_target_change;
          Alcotest.test_case "stale on double execute" `Quick
            test_plan_stale_on_double_execute;
        ] );
      ( "trace_equality",
        [
          Alcotest.test_case "ops script, seed 1" `Quick (test_trace_equality 1);
          Alcotest.test_case "ops script, seed 42" `Quick
            (test_trace_equality 42);
          Alcotest.test_case "ops script, seed 1337" `Quick
            (test_trace_equality 1337);
          Alcotest.test_case "merge script, seed 1" `Quick
            (test_merge_script_equality 1);
          Alcotest.test_case "merge script, seed 42" `Quick
            (test_merge_script_equality 42);
          Alcotest.test_case "merge script, seed 1337" `Quick
            (test_merge_script_equality 1337);
        ] );
      ( "skip_list",
        [
          Alcotest.test_case "insert sorted" `Quick test_skip_insert_sorted;
          Alcotest.test_case "stable" `Quick test_skip_stable;
          Alcotest.test_case "pop min" `Quick test_skip_pop_min;
          Alcotest.test_case "remove first" `Quick test_skip_remove_first;
          Alcotest.test_case "mem" `Quick test_skip_mem;
          Alcotest.test_case "sublinear search" `Quick
            test_skip_search_is_sublinear;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "target insert splits" `Quick
            test_plan_target_insert_split;
          Alcotest.test_case "target remove coalesces" `Quick
            test_plan_target_remove_coalesce;
          Alcotest.test_case "source insert" `Quick test_plan_source_insert;
          Alcotest.test_case "source remove" `Quick test_plan_source_remove;
        ] );
      ("properties", props);
    ]
