(* Tests for horse_sched: vCPUs, run queues (ordering, notifications,
   P²SM merge integration), load tracking, credit2 accounting and the
   scheduler's placement policies. *)

module Vcpu = Horse_sched.Vcpu
module Runqueue = Horse_sched.Runqueue
module Load = Horse_sched.Load_tracking
module Credit2 = Horse_sched.Credit2
module Scheduler = Horse_sched.Scheduler
module Topology = Horse_cpu.Topology
module Al = Horse_psm.Arena_list
module Psm = Horse_psm.Psm
module Time = Horse_sim.Time_ns

let mk_vcpu ?(sandbox = 0) ?(index = 0) ?credit () =
  Vcpu.create ~sandbox ~index ?credit ()

(* ------------------------------------------------------------------ *)
(* Vcpu                                                                *)
(* ------------------------------------------------------------------ *)

let test_vcpu_basics () =
  let v = mk_vcpu ~sandbox:3 ~index:1 () in
  Alcotest.(check int) "sandbox" 3 (Vcpu.sandbox v);
  Alcotest.(check int) "index" 1 (Vcpu.index v);
  Alcotest.(check int) "default credit" Vcpu.default_credit (Vcpu.credit v);
  Alcotest.(check bool) "offline" true (Vcpu.state v = Vcpu.Offline)

let test_vcpu_credit_ops () =
  let v = mk_vcpu ~credit:100 () in
  Vcpu.burn_credit v 30;
  Alcotest.(check int) "burned" 70 (Vcpu.credit v);
  Vcpu.burn_credit v 100;
  Alcotest.(check int) "negative allowed" (-30) (Vcpu.credit v);
  Vcpu.set_credit v 500;
  Alcotest.(check int) "set" 500 (Vcpu.credit v)

let test_vcpu_ordering () =
  let a = mk_vcpu ~credit:10 () and b = mk_vcpu ~credit:20 () in
  Alcotest.(check bool) "least credit first" true (Vcpu.compare_credit a b < 0)

(* ------------------------------------------------------------------ *)
(* Runqueue                                                            *)
(* ------------------------------------------------------------------ *)

let mk_queue ?kind () = Runqueue.create ?kind ~cpu:0 ~id:0 ()

let test_runqueue_sorted_by_credit () =
  let q = mk_queue () in
  let low = mk_vcpu ~index:0 ~credit:5 ()
  and mid = mk_vcpu ~index:1 ~credit:10 ()
  and high = mk_vcpu ~index:2 ~credit:20 () in
  ignore (Runqueue.enqueue q high);
  ignore (Runqueue.enqueue q low);
  ignore (Runqueue.enqueue q mid);
  Alcotest.(check int) "length" 3 (Runqueue.length q);
  Alcotest.(check (list int)) "credit order" [ 5; 10; 20 ]
    (List.map Vcpu.credit (Al.to_list (Runqueue.queue q)));
  Alcotest.(check bool) "queued state" true (Vcpu.state low = Vcpu.Queued)

let test_runqueue_dequeue () =
  let q = mk_queue () in
  let v = mk_vcpu () in
  let node, _ = Runqueue.enqueue q v in
  let pos = Runqueue.dequeue q node in
  Alcotest.(check int) "pos" 0 pos;
  Alcotest.(check int) "empty" 0 (Runqueue.length q);
  Alcotest.(check bool) "offline" true (Vcpu.state v = Vcpu.Offline)

let test_runqueue_timeslices () =
  let normal = mk_queue () and ull = mk_queue ~kind:Runqueue.Ull () in
  Alcotest.(check int) "ull 1us" 1_000
    (Time.span_to_ns (Runqueue.timeslice ull));
  Alcotest.(check int) "normal 10ms" 10_000_000
    (Time.span_to_ns (Runqueue.timeslice normal))

let test_runqueue_set_kind_guard () =
  let q = mk_queue () in
  ignore (Runqueue.enqueue q (mk_vcpu ()));
  Alcotest.check_raises "non-empty"
    (Invalid_argument "Runqueue.set_kind: queue not empty") (fun () ->
      Runqueue.set_kind q Runqueue.Ull)

let test_runqueue_notifications () =
  let q = mk_queue () in
  let events = ref [] in
  let sub =
    Runqueue.subscribe q (fun event ~pos ~node:_ ->
        events :=
          (match event with
          | Runqueue.Inserted -> `Ins pos
          | Runqueue.Removed -> `Rem pos)
          :: !events)
  in
  let v1 = mk_vcpu ~index:0 ~credit:10 () in
  let v2 = mk_vcpu ~index:1 ~credit:5 () in
  let n1, _ = Runqueue.enqueue q v1 in
  ignore (Runqueue.enqueue q v2);
  ignore (Runqueue.dequeue q n1);
  Alcotest.(check bool) "events" true
    (List.rev !events = [ `Ins 0; `Ins 0; `Rem 1 ]);
  Runqueue.unsubscribe q sub;
  ignore (Runqueue.enqueue q (mk_vcpu ~index:2 ()));
  Alcotest.(check int) "no event after unsubscribe" 3 (List.length !events);
  Alcotest.(check int) "subscriber count" 0 (Runqueue.subscriber_count q)

let test_runqueue_pop_front_notifies () =
  let q = mk_queue () in
  let removed = ref 0 in
  ignore
    (Runqueue.subscribe q (fun event ~pos:_ ~node:_ ->
         match event with
         | Runqueue.Removed -> incr removed
         | Runqueue.Inserted -> ()));
  ignore (Runqueue.enqueue q (mk_vcpu ~credit:1 ()));
  ignore (Runqueue.enqueue q (mk_vcpu ~index:1 ~credit:2 ()));
  let v = Option.get (Runqueue.pop_front q) in
  Alcotest.(check int) "least credit popped" 1 (Vcpu.credit v);
  Alcotest.(check int) "one removal" 1 !removed

let test_runqueue_apply_merge () =
  (* a full P²SM round-trip against a queue with a subscriber *)
  let q = mk_queue ~kind:Runqueue.Ull () in
  List.iter
    (fun (i, c) -> ignore (Runqueue.enqueue q (mk_vcpu ~sandbox:9 ~index:i ~credit:c ())))
    [ (0, 10); (1, 30) ];
  let inserted_positions = ref [] in
  ignore
    (Runqueue.subscribe q (fun event ~pos ~node:_ ->
         match event with
         | Runqueue.Inserted -> inserted_positions := pos :: !inserted_positions
         | Runqueue.Removed -> ()));
  let source = Al.create (Runqueue.arena q) in
  List.iter
    (fun (i, c) -> ignore (Al.insert_sorted source (mk_vcpu ~sandbox:1 ~index:i ~credit:c ())))
    [ (0, 5); (1, 20); (2, 40) ];
  let index = Psm.Index.build (Runqueue.queue q) in
  let plan = Psm.Plan.build ~source ~index in
  let stats, nodes = Runqueue.apply_merge q ~plan ~index ~source in
  Alcotest.(check int) "3 spliced" 3 stats.Psm.Plan.spliced;
  Alcotest.(check int) "3 nodes returned" 3 (Array.length nodes);
  Alcotest.(check (list int)) "final order" [ 5; 10; 20; 30; 40 ]
    (List.map Vcpu.credit (Al.to_list (Runqueue.queue q)));
  Alcotest.(check (list int)) "positions as sequential inserts" [ 0; 2; 4 ]
    (List.rev !inserted_positions);
  Alcotest.(check bool) "spliced vcpus queued" true
    (Array.for_all
       (fun n -> Vcpu.state (Al.value (Runqueue.queue q) n) = Vcpu.Queued)
       nodes)

(* Satellite: subscriber notification order is deterministic.  Two
   subscribers registered at different times must observe identical
   change sequences, with the earlier subscription always fired first
   (ascending subscription id — the Hashtbl this replaced made no such
   promise), and a rerun of the same seed must reproduce the exact
   sequence. *)
let churn_with_two_subscribers seed =
  let st = Random.State.make [| seed |] in
  let q = mk_queue ~kind:Runqueue.Ull () in
  let log_a = ref [] and log_b = ref [] and firing = ref [] in
  let record tag log event ~pos ~node:_ =
    firing := tag :: !firing;
    log :=
      (match event with
      | Runqueue.Inserted -> (true, pos)
      | Runqueue.Removed -> (false, pos))
      :: !log
  in
  ignore (Runqueue.subscribe q (record 'a' log_a));
  let nodes = ref [] in
  (* subscriber b arrives only after some churn has already happened:
     its log must still replay b-for-b against a's tail *)
  let b_joined = ref 0 in
  for i = 0 to 199 do
    if i = 50 then begin
      ignore (Runqueue.subscribe q (record 'b' log_b));
      b_joined := List.length !log_a
    end;
    match Random.State.int st 3 with
    | 0 | 1 ->
      let n, _ =
        Runqueue.enqueue q
          (mk_vcpu ~sandbox:i ~credit:(Random.State.int st 100) ())
      in
      nodes := n :: !nodes
    | _ -> (
      match !nodes with
      | [] -> ()
      | n :: rest ->
        nodes := rest;
        ignore (Runqueue.dequeue q n))
  done;
  let tail_of_a =
    List.filteri (fun i _ -> i < List.length !log_a - !b_joined) !log_a
  in
  (List.rev !log_a, List.rev !log_b, List.rev tail_of_a, List.rev !firing)

let test_subscriber_determinism seed () =
  let log_a, log_b, a_since_b, firing = churn_with_two_subscribers seed in
  Alcotest.(check bool) "b saw exactly a's events since joining" true
    (log_b = a_since_b);
  Alcotest.(check bool) "a fires before b on every event" true
    (let rec alternates = function
       | [] -> true
       | 'a' :: 'b' :: rest -> alternates rest
       | 'a' :: rest -> alternates rest (* before b subscribed *)
       | _ -> false
     in
     alternates firing);
  (* bit-for-bit reproducible *)
  let log_a', log_b', _, firing' = churn_with_two_subscribers seed in
  Alcotest.(check bool) "identical across reruns" true
    (log_a = log_a' && log_b = log_b' && firing = firing')

let test_runqueue_merge_wrong_index_rejected () =
  let q = mk_queue () and other = Runqueue.create ~cpu:1 ~id:1 () in
  let source = Al.create (Runqueue.arena other) in
  let index = Psm.Index.build (Runqueue.queue other) in
  let plan = Psm.Plan.build ~source ~index in
  Alcotest.check_raises "wrong queue"
    (Invalid_argument "Runqueue.apply_merge: index built over a different queue")
    (fun () -> ignore (Runqueue.apply_merge q ~plan ~index ~source))

(* ------------------------------------------------------------------ *)
(* Load tracking                                                       *)
(* ------------------------------------------------------------------ *)

let test_load_enqueue_decay () =
  let l = Load.create () in
  Alcotest.(check (float 0.0)) "initial" 0.0 (Load.load l);
  Load.on_enqueue l;
  let after_one = Load.load l in
  Alcotest.(check bool) "positive" true (after_one > 0.0);
  Load.decay l ~periods:32;
  Alcotest.(check (float 1e-9)) "halved after 32 periods" (after_one /. 2.0)
    (Load.load l)

let test_load_coalesced_equals_iterated () =
  let a = Load.create () and b = Load.create () in
  for _ = 1 to 36 do
    Load.on_enqueue a
  done;
  let pelt = Horse_coalesce.Coalesce.Affine.pelt in
  Load.on_enqueue_coalesced b
    (Horse_coalesce.Coalesce.Precomputed.make
       ~alpha:pelt.Horse_coalesce.Coalesce.Affine.alpha
       ~beta:pelt.Horse_coalesce.Coalesce.Affine.beta ~n:36);
  Alcotest.(check (float 1e-6)) "same load" (Load.load a) (Load.load b);
  Alcotest.(check int) "36 lock writes vanilla" 36 (Load.updates a);
  Alcotest.(check int) "1 lock write coalesced" 1 (Load.updates b)

let test_load_utilisation_clamped () =
  let l = Load.create () in
  Alcotest.(check (float 0.0)) "zero" 0.0 (Load.utilisation l);
  for _ = 1 to 10_000 do
    Load.on_enqueue l
  done;
  Alcotest.(check (float 1e-9)) "saturates at 1" 1.0 (Load.utilisation l)

let test_load_dequeue_floor () =
  let l = Load.create () in
  Load.on_dequeue l;
  Alcotest.(check (float 0.0)) "never negative" 0.0 (Load.load l)

(* ------------------------------------------------------------------ *)
(* Credit2                                                             *)
(* ------------------------------------------------------------------ *)

let test_credit2_pick_least () =
  let q = mk_queue () in
  ignore (Runqueue.enqueue q (mk_vcpu ~index:0 ~credit:50 ()));
  ignore (Runqueue.enqueue q (mk_vcpu ~index:1 ~credit:10 ()));
  let v = Option.get (Credit2.pick_next q) in
  Alcotest.(check int) "least credit" 10 (Vcpu.credit v);
  Alcotest.(check bool) "running" true (Vcpu.state v = Vcpu.Running)

let test_credit2_reset_when_exhausted () =
  let q = mk_queue () in
  ignore (Runqueue.enqueue q (mk_vcpu ~index:0 ~credit:(-5) ()));
  ignore (Runqueue.enqueue q (mk_vcpu ~index:1 ~credit:(-20) ()));
  Alcotest.(check bool) "needs reset" true (Credit2.needs_reset q);
  let v = Option.get (Credit2.pick_next q) in
  Alcotest.(check bool) "topped up" true (Vcpu.credit v > 0);
  (* the most-starved vCPU still runs first after the uniform top-up *)
  Alcotest.(check int) "still least" (Vcpu.default_credit - 20) (Vcpu.credit v)

let test_credit2_charge () =
  let v = mk_vcpu ~credit:1000 () in
  Credit2.charge v ~ran_for:(Time.span_us 100.0);
  Alcotest.(check int) "burned 100us" 900 (Vcpu.credit v);
  Credit2.charge v ~ran_for:(Time.span_ns 10);
  Alcotest.(check int) "at least 1" 899 (Vcpu.credit v)

let test_credit2_empty () =
  let q = mk_queue () in
  Alcotest.(check bool) "no pick" true (Credit2.pick_next q = None);
  Alcotest.(check bool) "no reset" false (Credit2.needs_reset q)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let small_topology = Topology.create ~sockets:1 ~cores_per_socket:8 ()

let test_scheduler_create () =
  let s = Scheduler.create ~topology:small_topology () in
  Alcotest.(check int) "8 queues" 8 (Scheduler.cpu_count s);
  Alcotest.(check int) "1 ull" 1 (List.length (Scheduler.ull_runqueues s));
  Alcotest.(check bool) "last cpu reserved" true
    (Runqueue.is_ull (Scheduler.runqueue s ~cpu:7));
  Alcotest.(check bool) "first cpu normal" false
    (Runqueue.is_ull (Scheduler.runqueue s ~cpu:0))

let test_scheduler_ull_count_validation () =
  Alcotest.check_raises "too many"
    (Invalid_argument "Scheduler.create: bad ull_count") (fun () ->
      ignore (Scheduler.create ~ull_count:9 ~topology:small_topology ()))

let test_scheduler_select_normal_spreads () =
  let s = Scheduler.create ~topology:small_topology () in
  let q1 = Scheduler.select_normal s in
  ignore (Runqueue.enqueue q1 (mk_vcpu ()));
  Horse_sched.Load_tracking.on_enqueue (Runqueue.load q1);
  let q2 = Scheduler.select_normal s in
  Alcotest.(check bool) "avoids loaded queue" true
    (Runqueue.id q1 <> Runqueue.id q2);
  Alcotest.(check bool) "never ull" false (Runqueue.is_ull q2)

let test_scheduler_ull_balance () =
  let s = Scheduler.create ~ull_count:2 ~topology:small_topology () in
  let q1 = Scheduler.select_ull_for_pause s in
  Scheduler.attach_paused s q1;
  let q2 = Scheduler.select_ull_for_pause s in
  Alcotest.(check bool) "balances" true (Runqueue.id q1 <> Runqueue.id q2);
  Scheduler.attach_paused s q2;
  Scheduler.detach_paused s q1;
  let q3 = Scheduler.select_ull_for_pause s in
  Alcotest.(check int) "prefers emptier" (Runqueue.id q1) (Runqueue.id q3)

let test_scheduler_detach_guard () =
  let s = Scheduler.create ~topology:small_topology () in
  let q = Scheduler.select_ull_for_pause s in
  Alcotest.check_raises "none attached"
    (Invalid_argument "Scheduler.detach_paused: none attached") (fun () ->
      Scheduler.detach_paused s q)

let test_scheduler_add_ull () =
  let s = Scheduler.create ~topology:small_topology () in
  let q = Scheduler.add_ull_runqueue s in
  Alcotest.(check int) "2 ull queues" 2 (List.length (Scheduler.ull_runqueues s));
  Alcotest.(check bool) "converted" true (Runqueue.is_ull q);
  Alcotest.(check int) "highest free id picked" 6 (Runqueue.id q)

let test_scheduler_total_queued () =
  let s = Scheduler.create ~topology:small_topology () in
  Alcotest.(check int) "empty" 0 (Scheduler.total_queued s);
  ignore (Runqueue.enqueue (Scheduler.runqueue s ~cpu:0) (mk_vcpu ()));
  ignore (Runqueue.enqueue (Scheduler.runqueue s ~cpu:1) (mk_vcpu ~index:1 ()));
  Alcotest.(check int) "two" 2 (Scheduler.total_queued s)

(* ------------------------------------------------------------------ *)
(* CPU executor                                                        *)
(* ------------------------------------------------------------------ *)

module Executor = Horse_sched.Cpu_executor
module Engine = Horse_sim.Engine

let executor_fixture () =
  let engine = Engine.create ~seed:17 () in
  let scheduler =
    Scheduler.create ~ull_count:1
      ~topology:(Topology.create ~sockets:1 ~cores_per_socket:4 ())
      ()
  in
  let ex =
    Executor.create_with_context_switch ~engine ~scheduler
      ~context_switch:(Time.span_ns 100) ()
  in
  (engine, scheduler, ex)

let test_executor_runs_one_task () =
  let engine, scheduler, ex = executor_fixture () in
  let queue = Scheduler.runqueue scheduler ~cpu:0 in
  let done_at = ref None in
  Executor.submit ex ~queue ~vcpu:(mk_vcpu ()) ~work:(Time.span_us 5.0)
    ~on_done:(fun at -> done_at := Some at);
  Alcotest.(check int) "one outstanding" 1 (Executor.outstanding ex);
  Engine.run engine;
  (* 5us of work in one 10ms-slice bite + one context switch *)
  Alcotest.(check (option int)) "completion time" (Some 5_100)
    (Option.map Time.to_ns !done_at);
  Alcotest.(check int) "drained" 0 (Executor.outstanding ex)

let test_executor_timeslice_rotation () =
  (* §4.1.3's point: on the 1us-timeslice ull queue, a sub-us task
     behind a long task completes after at most one slice; on a
     normal 10ms-slice queue it waits out the incumbent. *)
  let latency_on kind =
    let engine, scheduler, ex = executor_fixture () in
    let cpu = match kind with Runqueue.Ull -> 3 | Runqueue.Normal -> 0 in
    let queue = Scheduler.runqueue scheduler ~cpu in
    (* long incumbent: 200us of work, enqueued first *)
    Executor.submit ex ~queue ~vcpu:(mk_vcpu ~sandbox:1 ())
      ~work:(Time.span_us 200.0) ~on_done:(fun _ -> ());
    (* the uLL task arrives 2us later *)
    let ull_done = ref None in
    ignore
      (Engine.schedule engine ~after:(Time.span_us 2.0) (fun _ ->
           Executor.submit ex ~queue
             ~vcpu:(mk_vcpu ~sandbox:2 ~credit:1 ())
             ~work:(Time.span_ns 700)
             ~on_done:(fun at -> ull_done := Some (Time.to_ns at))));
    Engine.run engine;
    Option.get !ull_done
  in
  let on_ull = latency_on Runqueue.Ull in
  let on_normal = latency_on Runqueue.Normal in
  (* ull queue: done within a few microseconds; normal queue: waits
     out the incumbent's 200us *)
  Alcotest.(check bool)
    (Printf.sprintf "ull fast (%dns)" on_ull)
    true (on_ull < 10_000);
  Alcotest.(check bool)
    (Printf.sprintf "normal slow (%dns)" on_normal)
    true (on_normal > 200_000);
  Alcotest.(check bool) "order of magnitude apart" true
    (on_normal / on_ull > 10)

let test_executor_least_credit_priority () =
  (* the paper's run-queue order (least remaining credit first) gives
     strict priority: a vCPU that has run keeps winning the queue, so
     equal submissions complete sequentially, not round-robin *)
  let engine, scheduler, ex = executor_fixture () in
  let queue = Scheduler.runqueue scheduler ~cpu:3 (* ull: 1us slices *) in
  let finished = ref [] in
  List.iter
    (fun id ->
      Executor.submit ex ~queue ~vcpu:(mk_vcpu ~sandbox:id ())
        ~work:(Time.span_us 5.0)
        ~on_done:(fun at -> finished := (id, Time.to_ns at) :: !finished))
    [ 1; 2 ];
  Engine.run engine;
  match List.rev !finished with
  | [ (first, t1); (second, t2) ] ->
    Alcotest.(check int) "first submitted finishes first" 1 first;
    Alcotest.(check int) "second follows" 2 second;
    (* 5 slices of (1us + 100ns switch) each *)
    Alcotest.(check int) "first at 5.5us" 5_500 t1;
    Alcotest.(check int) "second at 11us" 11_000 t2
  | _ -> Alcotest.fail "expected two completions"

let test_executor_validation () =
  let _, scheduler, ex = executor_fixture () in
  let queue = Scheduler.runqueue scheduler ~cpu:0 in
  let vcpu = mk_vcpu () in
  Alcotest.check_raises "zero work"
    (Invalid_argument "Cpu_executor.submit: work must be positive") (fun () ->
      Executor.submit ex ~queue ~vcpu ~work:Time.span_zero ~on_done:ignore);
  Executor.submit ex ~queue ~vcpu ~work:(Time.span_us 1.0) ~on_done:ignore;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Cpu_executor.submit: vCPU already has outstanding work")
    (fun () ->
      Executor.submit ex ~queue ~vcpu ~work:(Time.span_us 1.0) ~on_done:ignore)

let test_executor_feeds_psm_subscribers () =
  (* work churning an ull queue must keep notifying paused plans *)
  let engine, scheduler, ex = executor_fixture () in
  let queue = Scheduler.runqueue scheduler ~cpu:3 in
  let events = ref 0 in
  ignore (Runqueue.subscribe queue (fun _ ~pos:_ ~node:_ -> incr events));
  Executor.submit ex ~queue ~vcpu:(mk_vcpu ()) ~work:(Time.span_us 3.0)
    ~on_done:(fun _ -> ());
  Engine.run engine;
  (* 3 slices: 1 initial enqueue + 2 re-enqueues + 3 pops = 6 events *)
  Alcotest.(check int) "notifications flowed" 6 !events

(* ------------------------------------------------------------------ *)
(* PELT                                                                *)
(* ------------------------------------------------------------------ *)

module Pelt = Horse_sched.Pelt

let test_pelt_decay_halves_at_32 () =
  (* kernel-faithful: the shift gives the exact half, then the 0.32
     fixed-point multiply by y^0 = 0xffffffff truncates one ulp *)
  Alcotest.(check int) "halving (one truncation ulp)" 499
    (Pelt.decay_load 1000 ~periods:32);
  Alcotest.(check int) "quartering" 249 (Pelt.decay_load 1000 ~periods:64);
  Alcotest.(check int) "identity" 1000 (Pelt.decay_load 1000 ~periods:0);
  Alcotest.(check int) "deep decay to zero" 0
    (Pelt.decay_load Pelt.load_avg_max ~periods:4000)

let test_pelt_decay_monotone () =
  let prev = ref max_int in
  for k = 0 to 120 do
    let v = Pelt.decay_load 40_000 ~periods:k in
    Alcotest.(check bool) "non-increasing" true (v <= !prev);
    prev := v
  done

let test_pelt_table_bounds () =
  Alcotest.(check int32) "y^0 = ~1.0" 0xffffffffl (Pelt.decay_multiplier 0);
  (* y^16 = sqrt(1/2) ~ 0.7071 in 0.32 fixed point *)
  Alcotest.(check int32) "y^16" 0xb504f333l (Pelt.decay_multiplier 16);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Pelt.decay_multiplier: k outside [0,31]") (fun () ->
      ignore (Pelt.decay_multiplier 32))

let test_pelt_entity_saturates () =
  let e = Pelt.create () in
  (* run flat out for 400 periods: converge near LOAD_AVG_MAX *)
  Pelt.update e ~now_us:(400 * Pelt.period_us) ~running:true;
  let v = Pelt.load_avg e in
  Alcotest.(check bool)
    (Printf.sprintf "near max (%d)" v)
    true
    (v > Pelt.load_avg_max * 95 / 100 && v <= Pelt.load_avg_max);
  Alcotest.(check bool) "utilisation ~1" true (Pelt.utilisation e > 0.95)

let test_pelt_entity_sleep_decays () =
  let e = Pelt.create () in
  Pelt.update e ~now_us:(100 * Pelt.period_us) ~running:true;
  let busy = Pelt.load_avg e in
  Pelt.update e ~now_us:(132 * Pelt.period_us) ~running:false;
  let rested = Pelt.load_avg e in
  (* 32 idle periods halve the average *)
  Alcotest.(check bool)
    (Printf.sprintf "halved (%d -> %d)" busy rested)
    true
    (abs (rested - (busy / 2)) <= busy / 50)

let test_pelt_entity_duty_cycle () =
  let e = Pelt.create () in
  (* 50% duty cycle: alternate one period running, one sleeping *)
  for i = 0 to 399 do
    Pelt.update e ~now_us:((i + 1) * Pelt.period_us) ~running:(i mod 2 = 0)
  done;
  let u = Pelt.utilisation e in
  Alcotest.(check bool)
    (Printf.sprintf "utilisation ~0.5 (%f)" u)
    true
    (u > 0.40 && u < 0.60)

let test_pelt_clock_regression () =
  let e = Pelt.create () in
  Pelt.update e ~now_us:100 ~running:true;
  Alcotest.check_raises "regression"
    (Invalid_argument "Pelt.update: clock went backwards") (fun () ->
      Pelt.update e ~now_us:50 ~running:true)

let test_pelt_runqueue_sum () =
  let e1 = Pelt.create () and e2 = Pelt.create () in
  Pelt.update e1 ~now_us:(200 * Pelt.period_us) ~running:true;
  Pelt.update e2 ~now_us:(200 * Pelt.period_us) ~running:true;
  let s = Pelt.Runqueue_sum.create () in
  Pelt.Runqueue_sum.attach s e1;
  Pelt.Runqueue_sum.attach s e2;
  Alcotest.(check int) "sum of both"
    (Pelt.load_avg e1 + Pelt.load_avg e2)
    (Pelt.Runqueue_sum.total s);
  Alcotest.(check (float 1e-9)) "utilisation clamps" 1.0
    (Pelt.Runqueue_sum.utilisation s);
  Pelt.Runqueue_sum.detach s e1;
  Pelt.Runqueue_sum.detach s e2;
  Alcotest.(check int) "empty again" 0 (Pelt.Runqueue_sum.total s)

let prop_pelt_decay_split =
  QCheck2.Test.make
    ~name:"decay(v, a+b) ~= decay(decay(v, a), b) within rounding" ~count:300
    QCheck2.Gen.(triple (0 -- Pelt.load_avg_max) (0 -- 100) (0 -- 100))
    (fun (v, a, b) ->
      let joint = Pelt.decay_load v ~periods:(a + b) in
      let split = Pelt.decay_load (Pelt.decay_load v ~periods:a) ~periods:b in
      (* each truncating step loses at most a few ulps *)
      abs (joint - split) <= 4 + (v / 10_000))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_runqueue_always_sorted =
  QCheck2.Test.make ~name:"run queue stays credit-sorted under churn" ~count:200
    QCheck2.Gen.(list_size (1 -- 60) (0 -- 1000))
    (fun credits ->
      let q = mk_queue () in
      let nodes =
        List.mapi
          (fun index credit ->
            fst (Runqueue.enqueue q (mk_vcpu ~index ~credit ())))
          credits
      in
      (* remove every third node, then check the sort invariant *)
      List.iteri
        (fun i node -> if i mod 3 = 0 then ignore (Runqueue.dequeue q node))
        nodes;
      Al.is_sorted (Runqueue.queue q))

let prop_merge_positions_track_subscriber =
  QCheck2.Test.make
    ~name:"subscriber replaying merge notifications reconstructs the queue"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (0 -- 20) (0 -- 100))
        (list_size (0 -- 20) (0 -- 100)))
    (fun (queue_credits, source_credits) ->
      let q = mk_queue ~kind:Runqueue.Ull () in
      List.iteri
        (fun index credit ->
          ignore (Runqueue.enqueue q (mk_vcpu ~sandbox:2 ~index ~credit ())))
        queue_credits;
      (* shadow copy maintained only from notifications *)
      let shadow = ref (List.map Vcpu.credit (Al.to_list (Runqueue.queue q))) in
      let insert_at pos x =
        let rec go i = function
          | rest when i = pos -> x :: rest
          | [] -> [ x ]
          | y :: rest -> y :: go (i + 1) rest
        in
        go 0
      in
      ignore
        (Runqueue.subscribe q (fun event ~pos ~node ->
             match event with
             | Runqueue.Inserted ->
               shadow :=
                 insert_at pos
                   (Vcpu.credit (Al.value (Runqueue.queue q) node))
                   !shadow
             | Runqueue.Removed ->
               shadow := List.filteri (fun i _ -> i <> pos) !shadow));
      let source = Al.create (Runqueue.arena q) in
      List.iteri
        (fun index credit ->
          ignore
            (Al.insert_sorted source (mk_vcpu ~sandbox:3 ~index ~credit ())))
        source_credits;
      let index = Psm.Index.build (Runqueue.queue q) in
      let plan = Psm.Plan.build ~source ~index in
      ignore (Runqueue.apply_merge q ~plan ~index ~source);
      !shadow = List.map Vcpu.credit (Al.to_list (Runqueue.queue q)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_runqueue_always_sorted;
      prop_merge_positions_track_subscriber;
      prop_pelt_decay_split;
    ]

let () =
  Alcotest.run "horse_sched"
    [
      ( "vcpu",
        [
          Alcotest.test_case "basics" `Quick test_vcpu_basics;
          Alcotest.test_case "credit ops" `Quick test_vcpu_credit_ops;
          Alcotest.test_case "ordering" `Quick test_vcpu_ordering;
        ] );
      ( "runqueue",
        [
          Alcotest.test_case "sorted by credit" `Quick
            test_runqueue_sorted_by_credit;
          Alcotest.test_case "dequeue" `Quick test_runqueue_dequeue;
          Alcotest.test_case "timeslices" `Quick test_runqueue_timeslices;
          Alcotest.test_case "set_kind guard" `Quick test_runqueue_set_kind_guard;
          Alcotest.test_case "notifications" `Quick test_runqueue_notifications;
          Alcotest.test_case "pop_front notifies" `Quick
            test_runqueue_pop_front_notifies;
          Alcotest.test_case "apply_merge" `Quick test_runqueue_apply_merge;
          Alcotest.test_case "merge guards queue identity" `Quick
            test_runqueue_merge_wrong_index_rejected;
          Alcotest.test_case "deterministic notify, seed 1" `Quick
            (test_subscriber_determinism 1);
          Alcotest.test_case "deterministic notify, seed 42" `Quick
            (test_subscriber_determinism 42);
          Alcotest.test_case "deterministic notify, seed 1337" `Quick
            (test_subscriber_determinism 1337);
        ] );
      ( "load",
        [
          Alcotest.test_case "enqueue + decay" `Quick test_load_enqueue_decay;
          Alcotest.test_case "coalesced == iterated" `Quick
            test_load_coalesced_equals_iterated;
          Alcotest.test_case "utilisation clamps" `Quick
            test_load_utilisation_clamped;
          Alcotest.test_case "dequeue floor" `Quick test_load_dequeue_floor;
        ] );
      ( "credit2",
        [
          Alcotest.test_case "pick least" `Quick test_credit2_pick_least;
          Alcotest.test_case "reset on exhaustion" `Quick
            test_credit2_reset_when_exhausted;
          Alcotest.test_case "charge" `Quick test_credit2_charge;
          Alcotest.test_case "empty queue" `Quick test_credit2_empty;
        ] );
      ( "executor",
        [
          Alcotest.test_case "runs one task" `Quick test_executor_runs_one_task;
          Alcotest.test_case "timeslice rotation" `Quick
            test_executor_timeslice_rotation;
          Alcotest.test_case "least-credit priority" `Quick
            test_executor_least_credit_priority;
          Alcotest.test_case "validation" `Quick test_executor_validation;
          Alcotest.test_case "feeds P2SM subscribers" `Quick
            test_executor_feeds_psm_subscribers;
        ] );
      ( "pelt",
        [
          Alcotest.test_case "decay halves at 32" `Quick
            test_pelt_decay_halves_at_32;
          Alcotest.test_case "decay monotone" `Quick test_pelt_decay_monotone;
          Alcotest.test_case "table bounds" `Quick test_pelt_table_bounds;
          Alcotest.test_case "entity saturates" `Quick test_pelt_entity_saturates;
          Alcotest.test_case "sleep decays" `Quick test_pelt_entity_sleep_decays;
          Alcotest.test_case "duty cycle" `Quick test_pelt_entity_duty_cycle;
          Alcotest.test_case "clock regression" `Quick test_pelt_clock_regression;
          Alcotest.test_case "runqueue sum" `Quick test_pelt_runqueue_sum;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "create" `Quick test_scheduler_create;
          Alcotest.test_case "ull_count validation" `Quick
            test_scheduler_ull_count_validation;
          Alcotest.test_case "select_normal spreads" `Quick
            test_scheduler_select_normal_spreads;
          Alcotest.test_case "ull balance" `Quick test_scheduler_ull_balance;
          Alcotest.test_case "detach guard" `Quick test_scheduler_detach_guard;
          Alcotest.test_case "add ull queue" `Quick test_scheduler_add_ull;
          Alcotest.test_case "total queued" `Quick test_scheduler_total_queued;
        ] );
      ("properties", props);
    ]
