(* Determinism tests for the sharded parallel engine: a cluster run
   must be bit-identical — records, rejections, every counter — for
   shards 1/2/4, across seeds, with faults off and with a non-inert
   blackout plan, both in one shot and when driven op-by-op through
   the model-based harness with the sequential run as the oracle.
   The experiment layer's sharded entry points get the same check. *)

module Engine = Horse_sim.Engine
module Shard_engine = Horse_sim.Shard_engine
module Time = Horse_sim.Time_ns
module Metrics = Horse_sim.Metrics
module Rng = Horse_sim.Rng
module Stats = Horse_sim.Stats
module Topology = Horse_cpu.Topology
module Sandbox = Horse_vmm.Sandbox
module Platform = Horse_faas.Platform
module Function_def = Horse_faas.Function_def
module Cluster = Horse_faas.Cluster
module Fault = Horse_fault.Fault
module Category = Horse_workload.Category
module E = Horse.Experiments

let small_topology = Topology.create ~sockets:1 ~cores_per_socket:8 ()

let ull_def =
  Function_def.create ~name:"ull" ~vcpus:2 ~memory_mb:512
    ~exec:(Function_def.Ull Category.Cat2) ()

(* ------------------------------------------------------------------ *)
(* Byte-level state dumps                                              *)
(* ------------------------------------------------------------------ *)

let dump_counters buf metrics =
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
    (Metrics.counters metrics)

let dump_record buf (server, (r : Platform.record)) =
  Buffer.add_string buf
    (Printf.sprintf "%d|%s|%s|%d|%d|%d|%d|%d\n" server r.Platform.function_name
       (Platform.mode_name r.Platform.mode)
       (Time.to_ns r.Platform.triggered_at)
       (Time.span_to_ns r.Platform.init)
       (Time.span_to_ns r.Platform.exec)
       (Time.span_to_ns r.Platform.preemption)
       (Time.to_ns r.Platform.completed_at))

let dump_cluster cluster =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "policy=%s pending=%d\n" (Cluster.policy_name cluster)
       (Cluster.pending_count cluster));
  List.iter (dump_record buf) (Cluster.records cluster);
  List.iter
    (fun (rj : Cluster.rejection) ->
      Buffer.add_string buf
        (Printf.sprintf "reject %s %s @%d\n"
           (Cluster.reject_reason_name rj.Cluster.reason)
           rj.Cluster.function_name
           (Time.to_ns rj.Cluster.at)))
    (Cluster.rejections cluster);
  dump_counters buf (Cluster.metrics cluster);
  for i = 0 to Cluster.server_count cluster - 1 do
    dump_counters buf (Platform.metrics (Cluster.server cluster i))
  done;
  (match Cluster.shard_engine cluster with
  | None -> ()
  | Some se ->
    (* the message count is part of the contract too: not just the
       same outcome, the same protocol traffic *)
    Buffer.add_string buf
      (Printf.sprintf "messages=%d\n" (Shard_engine.messages_delivered se)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A sharded storm: triggers + optional blackouts on 4 servers        *)
(* ------------------------------------------------------------------ *)

let blackout_plan seed =
  (* a 50 ms horizon gives each server a single blackout roll, so the
     rate must be near-certain for the schedule to be non-inert on
     every seed; the other triggers keep a modest rate to exercise
     the recovery ladder under sharding too *)
  Fault.Plan.create ~seed
    ~rates:
      (List.map
         (fun trigger ->
           (trigger, if trigger = Fault.Server_blackout then 0.95 else 0.02))
         Fault.all_triggers)
    ()

let sharded_storm ?policy ?scheduler ~seed ~shards ~faulty () =
  let faults = if faulty then blackout_plan (seed + 1) else Fault.Plan.none in
  let cluster =
    Cluster.create_sharded ~servers:4 ~topology:small_topology ~seed ~faults
      ~recovery:Platform.Recovery.default ?policy ?scheduler ~shards ()
  in
  Cluster.register cluster ull_def;
  Cluster.provision cluster ~name:"ull" ~total:12 ~strategy:Sandbox.Horse;
  let horizon = Time.span_ms 50.0 in
  if faulty then begin
    let outages = Cluster.schedule_faults cluster ~horizon in
    Alcotest.(check bool) "plan is non-inert" true (outages > 0)
  end;
  let rng = Rng.create ~seed:(seed + 2) in
  let engine = Cluster.engine cluster in
  for _ = 1 to 200 do
    let after = Time.span_ns (Rng.int rng (Time.span_to_ns horizon)) in
    ignore
      (Engine.schedule engine ~after (fun _ ->
           ignore
             (Cluster.trigger cluster ~name:"ull"
                ~mode:(Platform.Warm Sandbox.Horse) ())))
  done;
  Cluster.run cluster;
  cluster

let check_shard_invariance ?policy ~faulty seed =
  let dump shards =
    dump_cluster (sharded_storm ?policy ~seed ~shards ~faulty ())
  in
  let reference = dump 1 in
  Alcotest.(check bool)
    "storm produced records" true
    (String.length reference > 100);
  List.iter
    (fun shards ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d: shards=%d == shards=1" seed shards)
        reference (dump shards))
    [ 2; 4 ]

let test_storm_invariance () =
  List.iter (check_shard_invariance ~faulty:false) [ 1; 42; 1337 ]

let test_storm_invariance_faulty () =
  List.iter (check_shard_invariance ~faulty:true) [ 1; 42; 1337 ]

let test_scheduler_equivalence () =
  (* the lock-step scheduler is the epoch-semantics oracle retained
     from the fixed-quantum engine: the adaptive scheduler must
     produce byte-identical traces, with and without blackouts, at
     every shard count *)
  List.iter
    (fun faulty ->
      List.iter
        (fun seed ->
          let dump scheduler shards =
            dump_cluster (sharded_storm ~scheduler ~seed ~shards ~faulty ())
          in
          let reference = dump Shard_engine.Lockstep 1 in
          List.iter
            (fun shards ->
              Alcotest.(check string)
                (Printf.sprintf "seed %d faulty %b: lockstep shards=%d" seed
                   faulty shards)
                reference
                (dump Shard_engine.Lockstep shards);
              Alcotest.(check string)
                (Printf.sprintf "seed %d faulty %b: adaptive shards=%d" seed
                   faulty shards)
                reference
                (dump Shard_engine.Adaptive shards))
            [ 1; 4 ])
        [ 1; 42; 1337 ])
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Idle fast-forward: dense clumps separated by huge gaps              *)
(* ------------------------------------------------------------------ *)

let gap_clump_storm ?scheduler ~seed ~shards () =
  (* arrivals the adaptive scheduler exists for: millisecond-scale
     dead air between microsecond-dense clumps.  The lock-step
     scheduler walks the gaps window by window; the adaptive one must
     fast-forward across them — and still produce the same trace *)
  let cluster =
    Cluster.create_sharded ~servers:4 ~topology:small_topology ~seed
      ?scheduler ~shards ()
  in
  Cluster.register cluster ull_def;
  Cluster.provision cluster ~name:"ull" ~total:12 ~strategy:Sandbox.Horse;
  let engine = Cluster.engine cluster in
  let rng = Rng.create ~seed:(seed + 3) in
  for clump = 0 to 7 do
    let base = 1_000_000 + (clump * 8_000_000) in
    for _ = 1 to 25 do
      let at = Time.of_ns (base + Rng.int rng 100_000) in
      ignore
        (Engine.schedule_at engine ~at (fun _ ->
             ignore
               (Cluster.trigger cluster ~name:"ull"
                  ~mode:(Platform.Warm Sandbox.Horse) ())))
    done
  done;
  Cluster.run cluster;
  cluster

let test_fast_forward_equivalence () =
  List.iter
    (fun seed ->
      let reference =
        dump_cluster
          (gap_clump_storm ~scheduler:Shard_engine.Lockstep ~seed ~shards:1 ())
      in
      Alcotest.(check bool)
        "gap-clump storm produced records" true
        (String.length reference > 100);
      List.iter
        (fun shards ->
          let adaptive =
            gap_clump_storm ~scheduler:Shard_engine.Adaptive ~seed ~shards ()
          in
          Alcotest.(check string)
            (Printf.sprintf "seed %d: adaptive shards=%d == lock-step" seed
               shards)
            reference (dump_cluster adaptive);
          let se = Option.get (Cluster.shard_engine adaptive) in
          (* 8ms of dead air between clumps, an 800us default window:
             the gaps must be jumped, not walked *)
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: shards=%d fast-forwarded" seed shards)
            true
            (Shard_engine.fast_forwards se > 0);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: shards=%d fewer epochs than lock-step"
               seed shards)
            true
            (Shard_engine.epochs se
            < Shard_engine.epochs
                (Option.get
                   (Cluster.shard_engine
                      (gap_clump_storm ~scheduler:Shard_engine.Lockstep ~seed
                         ~shards ())))))
        [ 1; 4 ])
    [ 1; 42 ]

let test_storm_invariance_policies () =
  (* every built-in policy — including pull, whose claims are extra
     protocol traffic — must stay bit-identical across shard counts,
     with blackouts wiping and recovering servers mid-storm *)
  List.iter
    (fun policy ->
      List.iter
        (fun faulty ->
          List.iter
            (check_shard_invariance ~policy ~faulty)
            [ 1; 42; 1337 ])
        [ false; true ])
    (Cluster.Policy.builtins ())

(* ------------------------------------------------------------------ *)
(* Model-based: op-by-op against the sequential oracle                 *)
(* ------------------------------------------------------------------ *)

type op =
  | Trigger of int  (** schedule a warm trigger [ns] after now *)
  | Run of int  (** advance both clusters [ns] past the later now *)

let shard_spec ?policy ~name () =
  let gen rand =
    match Random.State.int rand 3 with
    | 0 | 1 -> Trigger (Random.State.int rand 3_000_000)
    | _ -> Run (Random.State.int rand 5_000_000)
  in
  let show = function
    | Trigger ns -> Printf.sprintf "Trigger +%dns" ns
    | Run ns -> Printf.sprintf "Run +%dns" ns
  in
  let make () =
    let fresh shards =
      let cluster =
        Cluster.create_sharded ~servers:3 ~topology:small_topology ~seed:11
          ?policy ~shards ()
      in
      Cluster.register cluster ull_def;
      Cluster.provision cluster ~name:"ull" ~total:9 ~strategy:Sandbox.Horse;
      cluster
    in
    let sut = fresh 4 and oracle = fresh 1 in
    let schedule cluster ns =
      let engine = Cluster.engine cluster in
      ignore
        (Engine.schedule engine ~after:(Time.span_ns ns) (fun _ ->
             ignore
               (Cluster.trigger cluster ~name:"ull"
                  ~mode:(Platform.Warm Sandbox.Horse) ())))
    in
    fun op ->
      (match op with
      | Trigger ns ->
        schedule sut ns;
        schedule oracle ns
      | Run ns ->
        (* both clocks sit at window boundaries that may differ until
           drained; run to the same absolute horizon *)
        let now c = Time.to_ns (Engine.now (Cluster.engine c)) in
        let until = Time.of_ns (max (now sut) (now oracle) + ns) in
        Cluster.run ~until sut;
        Cluster.run ~until oracle);
      let a = dump_cluster sut and b = dump_cluster oracle in
      if String.equal a b then None
      else Some (Printf.sprintf "shards=4 diverged from shards=1:\n%s\n--\n%s" a b)
  in
  Harness.{ name; gen; show; make }

let test_model_based () =
  Harness.check (shard_spec ~name:"sharded cluster vs sequential" ())

let gap_clump_spec () =
  (* the same op-by-op oracle with the adaptive scheduler's worst
     enemy as the generator: microsecond-dense trigger clumps
     interleaved with Run ops that open tens of milliseconds of dead
     air.  The adaptive sharded cluster must match both the
     sequential run and the lock-step oracle after every op *)
  let gen rand =
    match Random.State.int rand 4 with
    | 0 | 1 -> Trigger (Random.State.int rand 100_000)
    | 2 -> Run (Random.State.int rand 2_000_000)
    | _ -> Run (20_000_000 + Random.State.int rand 40_000_000)
  in
  let show = function
    | Trigger ns -> Printf.sprintf "Trigger +%dns" ns
    | Run ns -> Printf.sprintf "Run +%dns" ns
  in
  let make () =
    let fresh ~scheduler shards =
      let cluster =
        Cluster.create_sharded ~servers:3 ~topology:small_topology ~seed:13
          ~scheduler ~shards ()
      in
      Cluster.register cluster ull_def;
      Cluster.provision cluster ~name:"ull" ~total:9 ~strategy:Sandbox.Horse;
      cluster
    in
    let sut = fresh ~scheduler:Shard_engine.Adaptive 4 in
    let lockstep = fresh ~scheduler:Shard_engine.Lockstep 4 in
    let oracle = fresh ~scheduler:Shard_engine.Adaptive 1 in
    let all = [ sut; lockstep; oracle ] in
    let schedule cluster ns =
      let engine = Cluster.engine cluster in
      ignore
        (Engine.schedule engine ~after:(Time.span_ns ns) (fun _ ->
             ignore
               (Cluster.trigger cluster ~name:"ull"
                  ~mode:(Platform.Warm Sandbox.Horse) ())))
    in
    fun op ->
      (match op with
      | Trigger ns -> List.iter (fun c -> schedule c ns) all
      | Run ns ->
        let now c = Time.to_ns (Engine.now (Cluster.engine c)) in
        let until =
          Time.of_ns (List.fold_left (fun acc c -> max acc (now c)) 0 all + ns)
        in
        List.iter (fun c -> Cluster.run ~until c) all);
      let a = dump_cluster sut
      and b = dump_cluster oracle
      and c = dump_cluster lockstep in
      if not (String.equal a b) then
        Some
          (Printf.sprintf "adaptive shards=4 diverged from shards=1:\n%s\n--\n%s"
             a b)
      else if not (String.equal a c) then
        Some
          (Printf.sprintf "adaptive diverged from lock-step:\n%s\n--\n%s" a c)
      else None
  in
  Harness.{ name = "gap/clump adaptive vs oracles"; gen; show; make }

let test_model_based_gap_clump () = Harness.check (gap_clump_spec ())

let test_model_based_policies () =
  (* the same op-by-op oracle, once per built-in policy: pull's
     router-side queue and claim messages must commute with execution
     placement exactly like push's optimistic placements do *)
  List.iter
    (fun policy ->
      Harness.check
        (shard_spec ~policy
           ~name:
             (Printf.sprintf "sharded %s vs sequential"
                (Cluster.Policy.name policy))
           ()))
    (Cluster.Policy.builtins ())

(* ------------------------------------------------------------------ *)
(* Experiment layer: sharded entry points are shards-invariant        *)
(* ------------------------------------------------------------------ *)

let test_scale_invariant () =
  let row shards =
    E.scale_run ~seed:7 ~shards ~duration_s:0.05 ~servers:4 ~sandboxes:64
      ~triggers:200 ()
  in
  let reference = row 1 in
  Alcotest.(check bool)
    "scale run completed work" true
    (reference.E.sc_completed > 0);
  List.iter
    (fun shards ->
      let r = row shards in
      Alcotest.(check bool)
        (Printf.sprintf "scale shards=%d == shards=1" shards)
        true
        ({ r with E.sc_shards = reference.E.sc_shards } = reference))
    [ 2; 4 ]

let test_faults_invariant () =
  let rows shards =
    E.faults ~seed:7 ~duration_s:0.3 ~rates:[ 0.0; 0.05 ] ~shards ()
  in
  let reference = rows 1 in
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Printf.sprintf "faults shards=%d == shards=1" shards)
        true
        (rows shards = reference))
    [ 2; 4 ]

let test_colocation_invariant () =
  let rows shards =
    E.colocation ~seed:7 ~duration_s:0.5 ~repeats:2 ~vcpus:[ 8 ] ~shards ()
  in
  let reference = rows 1 in
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Printf.sprintf "colocation shards=%d == shards=1" shards)
        true
        (rows shards = reference))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Shard engine basics                                                 *)
(* ------------------------------------------------------------------ *)

let test_post_ordering () =
  (* same-instant messages from different sources fire in source
     order, not post order *)
  let se =
    Shard_engine.create ~sources:3 ~lookahead:(Time.span_us 10.0) ()
  in
  let fired = ref [] in
  let at = Time.of_ns 5_000 in
  Shard_engine.post se ~src:2 ~dst:0 ~at (fun _ -> fired := 2 :: !fired);
  Shard_engine.post se ~src:1 ~dst:0 ~at (fun _ -> fired := 1 :: !fired);
  Shard_engine.post se ~src:0 ~dst:0 ~at (fun _ -> fired := 0 :: !fired);
  Shard_engine.run se;
  Alcotest.(check (list int)) "delivery in (at, src, seq) order" [ 0; 1; 2 ]
    (List.rev !fired);
  Alcotest.(check int) "all delivered" 3 (Shard_engine.messages_delivered se)

let test_channel_bound_property () =
  (* property: with a heterogeneous channel matrix, a message posted
     at exactly [now + declared delay] — the tightest send the channel
     contract allows — is never refused (i.e. never lands inside the
     destination's open window), and the delivered trace is identical
     across schedulers and shard counts.  Four nodes on a ring with
     5/20/7/50us links, two concurrent ping-pong chains hopping to
     rng-chosen neighbours at the contract bound. *)
  let us = Time.span_us in
  let links =
    [ (0, 1, us 5.0); (1, 0, us 5.0); (1, 2, us 20.0); (2, 1, us 20.0);
      (2, 3, us 7.0); (3, 2, us 7.0); (3, 0, us 50.0); (0, 3, us 50.0) ]
  in
  let neighbours = [| [| 1; 3 |]; [| 0; 2 |]; [| 1; 3 |]; [| 2; 0 |] |] in
  let delay src dst =
    let _, _, d = List.find (fun (s, d, _) -> s = src && d = dst) links in
    d
  in
  let run ~scheduler ~shards =
    let se =
      Shard_engine.create ~scheduler ~channels:links ~sources:4
        ~lookahead:(us 5.0) ()
    in
    (* per-node state only: with shards > 1 the callbacks of different
       nodes run on different strands *)
    let traces = Array.init 4 (fun _ -> Buffer.create 512) in
    let rngs = Array.init 4 (fun i -> Rng.create ~seed:(100 + i)) in
    let rec send ~src ~ttl =
      if ttl > 0 then begin
        let engine = Shard_engine.engine se src in
        let dst =
          neighbours.(src).(Rng.int rngs.(src) (Array.length neighbours.(src)))
        in
        let at = Time.add (Engine.now engine) (delay src dst) in
        Shard_engine.post se ~src ~dst ~at (fun e ->
            Buffer.add_string traces.(dst)
              (Printf.sprintf "%d<-%d@%d\n" dst src (Time.to_ns (Engine.now e)));
            send ~src:dst ~ttl:(ttl - 1))
      end
    in
    ignore
      (Engine.schedule_at (Shard_engine.engine se 0) ~at:(Time.of_ns 1_000)
         (fun _ -> send ~src:0 ~ttl:200));
    ignore
      (Engine.schedule_at (Shard_engine.engine se 2) ~at:(Time.of_ns 1_500)
         (fun _ -> send ~src:2 ~ttl:200));
    Shard_engine.run ~shards se;
    Alcotest.(check int) "all hops delivered" 400
      (Shard_engine.messages_delivered se);
    String.concat "--" (Array.to_list (Array.map Buffer.contents traces))
  in
  let reference = run ~scheduler:Shard_engine.Lockstep ~shards:1 in
  List.iter
    (fun (scheduler, name) ->
      List.iter
        (fun shards ->
          Alcotest.(check string)
            (Printf.sprintf "%s shards=%d == lockstep shards=1" name shards)
            reference
            (run ~scheduler ~shards))
        [ 1; 2; 4 ])
    [ (Shard_engine.Lockstep, "lockstep"); (Shard_engine.Adaptive, "adaptive") ]

let test_post_inside_window_rejected () =
  let se =
    Shard_engine.create ~sources:2 ~lookahead:(Time.span_us 10.0) ()
  in
  let engine = Shard_engine.engine se 0 in
  let raised = ref false in
  ignore
    (Engine.schedule_at engine ~at:(Time.of_ns 100) (fun _ ->
         (* now = 100ns, window is [100ns, 10100ns): a post due inside
            it must be refused *)
         match
           Shard_engine.post se ~src:0 ~dst:1 ~at:(Time.of_ns 5_000)
             (fun _ -> ())
         with
         | () -> ()
         | exception Invalid_argument _ -> raised := true));
  Shard_engine.run se;
  Alcotest.(check bool) "in-window post rejected" true !raised

(* ------------------------------------------------------------------ *)
(* Golden traces: routers=1 is byte-for-byte the historical cluster   *)
(* ------------------------------------------------------------------ *)

(* MD5 digests of [dump_cluster] on every (policy, faulty, seed) storm,
   captured from the single-router build immediately before the router
   plane was partitioned.  [routers = 1] (the default) must reproduce
   them forever: any drift here means the partitioned control plane
   changed the degenerate case, not just added to it. *)
let golden_digests =
  [
    ("push-warm-first", false, 1, "3b85f20ef54f0a183005d24c2157f767");
    ("push-warm-first", false, 42, "c0f92d1b5d3ef729567849b62f2ed58a");
    ("push-warm-first", false, 1337, "c256e3c7a2ce31501467797b463baffe");
    ("push-warm-first", true, 1, "10b1ae0b1d32f005b4f3518bfe5a868e");
    ("push-warm-first", true, 42, "d9990fc060351e4b4b90f13ae06f83a2");
    ("push-warm-first", true, 1337, "9eb7bba0fe2a2f345439756eb40f0c9c");
    ("pull", false, 1, "e7b739fdb5595b6377d00d54de49fcb8");
    ("pull", false, 42, "b19a77f9d17f9a22cd533ee01d67d9ed");
    ("pull", false, 1337, "f394535d7df70e637631c796f25f8e35");
    ("pull", true, 1, "ca74cf71ee465389c4de0b840324c5d8");
    ("pull", true, 42, "36b6c44ba82f0fb1c9bbdd16494cbbf1");
    ("pull", true, 1337, "1870147779869bbb2220183b8a1644d4");
    ("core", false, 1, "3ae0862812e97ab98f4abdf07b16fc77");
    ("core", false, 42, "2b2d7b6fe527edc1a78f1a4bbcd5b394");
    ("core", false, 1337, "c028b81f4e54ff7509c0b848ba207498");
    ("core", true, 1, "e64855fe110f6047014651a3aad35fab");
    ("core", true, 42, "fb0c24cbc0c9edeba06a419ff35da6e4");
    ("core", true, 1337, "06827c40e56aa1e06da17cabb254f385");
  ]

let test_golden_traces () =
  let builtins = Cluster.Policy.builtins () in
  List.iter
    (fun (policy_name, faulty, seed, expected) ->
      let policy =
        List.find
          (fun p -> String.equal (Cluster.Policy.name p) policy_name)
          builtins
      in
      let c = sharded_storm ~policy ~seed ~shards:2 ~faulty () in
      Alcotest.(check string)
        (Printf.sprintf "%s faulty=%b seed=%d" policy_name faulty seed)
        expected
        (Digest.to_hex (Digest.string (dump_cluster c))))
    golden_digests

(* ------------------------------------------------------------------ *)
(* Partitioned router plane                                            *)
(* ------------------------------------------------------------------ *)

let fn_count = 8

let fn_name i = Printf.sprintf "fn%d" i

let multi_defs () =
  List.init fn_count (fun i ->
      Function_def.create ~name:(fn_name i) ~vcpus:2 ~memory_mb:512
        ~exec:(Function_def.Ull Category.Cat2) ())

(* A storm over many functions, so the function->router hash actually
   spreads the load: each trigger is scheduled on its affine router's
   engine, as a multi-router deployment must. *)
let router_storm ?policy ?scheduler ?(faulty = false) ?(flaps = false)
    ~routers ~seed ~shards () =
  let faults = if faulty then blackout_plan (seed + 1) else Fault.Plan.none in
  let cluster =
    Cluster.create_sharded ~servers:4 ~topology:small_topology ~seed ~faults
      ~recovery:Platform.Recovery.default ?policy ?scheduler ~shards ~routers
      ()
  in
  List.iter (Cluster.register cluster) (multi_defs ());
  for i = 0 to fn_count - 1 do
    Cluster.provision cluster ~name:(fn_name i) ~total:3
      ~strategy:Sandbox.Horse
  done;
  let horizon = Time.span_ms 50.0 in
  if faulty then begin
    let outages = Cluster.schedule_faults cluster ~horizon in
    Alcotest.(check bool) "plan is non-inert" true (outages > 0)
  end;
  if flaps then
    (* every server drops out of routing mid-storm and rejoins:
       pure health churn (unlike a blackout, in-flight work and warm
       pools survive), staggered so group health keeps changing *)
    for s = 0 to 3 do
      let engine =
        Cluster.router_engine cluster (Cluster.router_of_server cluster s)
      in
      let down = Time.span_ms (8.0 +. (3.0 *. float_of_int s)) in
      let up = Time.span_ms (22.0 +. (4.0 *. float_of_int s)) in
      ignore
        (Engine.schedule engine ~after:down (fun _ ->
             Cluster.mark_down cluster s));
      ignore
        (Engine.schedule engine ~after:up (fun _ -> Cluster.mark_up cluster s))
    done;
  let rng = Rng.create ~seed:(seed + 2) in
  for _ = 1 to 200 do
    let after = Time.span_ns (Rng.int rng (Time.span_to_ns horizon)) in
    let fn_id = Cluster.fn_id cluster ~name:(fn_name (Rng.int rng fn_count)) in
    let engine =
      Cluster.router_engine cluster (Cluster.router_of_fn cluster ~fn_id)
    in
    ignore
      (Engine.schedule engine ~after (fun _ ->
           ignore
             (Cluster.trigger_id cluster ~fn_id
                ~mode:(Platform.Warm Sandbox.Horse) ())))
  done;
  Cluster.run cluster;
  cluster

let test_router_invariance () =
  (* at any fixed router count the whole trace — records, spills,
     rejections, every counter, the message count — is bit-identical
     across execution shards and schedulers *)
  List.iter
    (fun routers ->
      List.iter
        (fun faulty ->
          List.iter
            (fun seed ->
              let dump ?scheduler shards =
                dump_cluster
                  (router_storm ?scheduler ~routers ~seed ~shards ~faulty ())
              in
              let reference = dump 1 in
              Alcotest.(check bool) "storm produced records" true
                (String.length reference > 100);
              List.iter
                (fun shards ->
                  Alcotest.(check string)
                    (Printf.sprintf
                       "routers=%d seed=%d faulty=%b: shards=%d == shards=1"
                       routers seed faulty shards)
                    reference (dump shards))
                [ 2; 4 ];
              Alcotest.(check string)
                (Printf.sprintf "routers=%d seed=%d faulty=%b: lockstep"
                   routers seed faulty)
                reference
                (dump ~scheduler:Shard_engine.Lockstep 4))
            [ 1; 42 ])
        [ false; true ])
    [ 2; 4 ]

let test_router_invariance_policies () =
  List.iter
    (fun policy ->
      let dump shards =
        dump_cluster
          (router_storm ~policy ~routers:2 ~seed:1337 ~shards ~faulty:true ())
      in
      let reference = dump 1 in
      Alcotest.(check string)
        (Printf.sprintf "%s routers=2: shards=4 == shards=1"
           (Cluster.Policy.name policy))
        reference (dump 4))
    (Cluster.Policy.builtins ())

(* -- the spill protocol -------------------------------------------- *)

let spill_cluster ~e2e () =
  let cluster =
    Cluster.create_sharded ~servers:4 ~topology:small_topology ~seed:5 ~e2e
      ~routers:2 ()
  in
  List.iter (Cluster.register cluster) (multi_defs ());
  cluster

let test_spill_dry_warm () =
  let cluster = spill_cluster ~e2e:true () in
  let fn_id = Cluster.fn_id cluster ~name:(fn_name 0) in
  let home = Cluster.router_of_fn cluster ~fn_id in
  let neighbor = (home + 1) mod 2 in
  (* all the warmth for fn0 lives in the *neighbor's* group: the home
     router is dry, so an affine warm trigger must spill one hop and
     land warm over there instead of being rejected *)
  Cluster.provision cluster ~router:neighbor ~name:(fn_name 0) ~total:2
    ~strategy:Sandbox.Horse;
  let outcome = ref None in
  let completion = ref None in
  ignore
    (Engine.schedule_at
       (Cluster.router_engine cluster home)
       ~at:(Time.of_ns 1_000_000)
       (fun _ ->
         outcome :=
           Some
             (Cluster.trigger_id cluster ~fn_id
                ~mode:(Platform.Warm Sandbox.Horse)
                ~on_complete:(fun (server, record) ->
                  completion := Some (server, record))
                ())));
  Cluster.run cluster;
  (match !outcome with
  | Some (Cluster.Forwarded r) ->
    Alcotest.(check int) "forwarded to the neighbor" neighbor r
  | _ -> Alcotest.fail "expected Forwarded");
  (match !completion with
  | None -> Alcotest.fail "spilled trigger never completed"
  | Some (server, record) ->
    Alcotest.(check int) "placed in the neighbor's group" neighbor
      (Cluster.router_of_server cluster server);
    (match record.Platform.mode with
    | Platform.Warm Sandbox.Horse -> ()
    | _ -> Alcotest.fail "expected a warm record");
    (* the per-record latency identity holds for spilled triggers *)
    Alcotest.(check int) "latency identity"
      (Time.span_to_ns record.Platform.init
      + Time.span_to_ns record.Platform.exec
      + Time.span_to_ns record.Platform.preemption)
      (Time.to_ns record.Platform.completed_at
      - Time.to_ns record.Platform.triggered_at));
  Alcotest.(check int) "one spill counted" 1
    (Metrics.counter (Cluster.metrics cluster) "cluster.spills");
  (* the spilled trigger completes on the neighbor's timeline, and its
     end-to-end latency charges the extra hop: arrival -> ring hop ->
     placement -> service -> completion notification is at least three
     placement delays (150us at the default 50us) on top of service *)
  let e2e = Option.get (Cluster.e2e_latencies_of cluster neighbor) in
  Alcotest.(check int) "observed on the neighbor" 1 (Stats.Quantile.count e2e);
  Alcotest.(check bool) "e2e charges the hop" true
    (Stats.Quantile.mean e2e >= 150.0)

let test_spill_all_down_and_pinned () =
  let cluster = spill_cluster ~e2e:false () in
  let fn_id = Cluster.fn_id cluster ~name:(fn_name 1) in
  let home = Cluster.router_of_fn cluster ~fn_id in
  let neighbor = (home + 1) mod 2 in
  Cluster.provision cluster ~router:neighbor ~name:(fn_name 1) ~total:2
    ~strategy:Sandbox.Horse;
  (* the home group is entirely down: an affine trigger rides the ring
     to the neighbor; a pinned trigger must NOT spill — it is rejected
     in place, because its caller relies on the pinned timeline *)
  Array.iter
    (fun s -> Cluster.mark_down cluster s)
    (Cluster.router_servers cluster home);
  let affine = ref None and pinned = ref None in
  ignore
    (Engine.schedule_at
       (Cluster.router_engine cluster home)
       ~at:(Time.of_ns 1_000_000)
       (fun _ ->
         affine :=
           Some
             (Cluster.trigger_id cluster ~fn_id
                ~mode:(Platform.Warm Sandbox.Horse) ());
         pinned :=
           Some
             (Cluster.trigger_id cluster ~router:home ~fn_id
                ~mode:(Platform.Warm Sandbox.Horse) ())));
  Cluster.run cluster;
  (match !affine with
  | Some (Cluster.Forwarded r) ->
    Alcotest.(check int) "spilled off the dead group" neighbor r
  | _ -> Alcotest.fail "expected Forwarded");
  (match !pinned with
  | Some (Cluster.Rejected rj) ->
    Alcotest.(check string) "pinned trigger rejected in place"
      "all-servers-down"
      (Cluster.reject_reason_name rj.Cluster.reason)
  | _ -> Alcotest.fail "expected Rejected for the pinned trigger");
  Alcotest.(check int) "exactly one spill" 1
    (Metrics.counter (Cluster.metrics cluster) "cluster.spills")

(* -- pull-claim fairness across the plane -------------------------- *)

let test_pull_fifo_per_router () =
  (* ten pinned triggers per router against one warm sandbox per
     group: most park in the router queue, so claim-resolution order
     is observable through each record's dispatch instant.  Claims
     must resolve strictly FIFO per router, and a blackout zeroing one
     router's tokens must not perturb the other router's queue at
     all. *)
  let run ~blackout =
    let cluster =
      Cluster.create_sharded ~servers:4 ~topology:small_topology ~seed:3
        ~recovery:Platform.Recovery.default
        ~policy:(Cluster.Policy.pull ()) ~routers:2 ()
    in
    Cluster.register cluster ull_def;
    Cluster.provision cluster ~router:0 ~name:"ull" ~total:1
      ~strategy:Sandbox.Horse;
    Cluster.provision cluster ~router:1 ~name:"ull" ~total:1
      ~strategy:Sandbox.Horse;
    let fn_id = Cluster.fn_id cluster ~name:"ull" in
    let order = [| []; [] |] in
    (* per router: (tag, dispatch instant) in completion order *)
    for r = 0 to 1 do
      let engine = Cluster.router_engine cluster r in
      for tag = 0 to 9 do
        ignore
          (Engine.schedule_at engine
             ~at:(Time.of_ns (1_000_000 + (tag * 1_000)))
             (fun _ ->
               ignore
                 (Cluster.trigger_id cluster ~router:r ~fn_id
                    ~mode:(Platform.Warm Sandbox.Horse)
                    ~on_complete:(fun (_, record) ->
                      order.(r) <-
                        (tag, Time.to_ns record.Platform.triggered_at)
                        :: order.(r))
                    ())))
      done
    done;
    if blackout then begin
      let victim = (Cluster.router_servers cluster 0).(0) in
      let engine = Cluster.router_engine cluster 0 in
      ignore
        (Engine.schedule_at engine ~at:(Time.of_ns 1_004_500) (fun _ ->
             Cluster.mark_down cluster victim));
      ignore
        (Engine.schedule_at engine ~at:(Time.of_ns 40_000_000) (fun _ ->
             Cluster.mark_up cluster victim))
    end;
    Cluster.run cluster;
    Array.map List.rev order
  in
  let check_fifo name completions =
    Alcotest.(check int) (name ^ ": all completed") 10
      (List.length completions);
    let by_tag = List.sort compare completions in
    ignore
      (List.fold_left
         (fun prev (tag, trig) ->
           Alcotest.(check bool)
             (Printf.sprintf "%s: tag %d dispatched in FIFO order" name tag)
             true (trig >= prev);
           trig)
         min_int by_tag)
  in
  let plain = run ~blackout:false in
  check_fifo "router 0" plain.(0);
  check_fifo "router 1" plain.(1);
  let perturbed = run ~blackout:true in
  check_fifo "router 0 under blackout" perturbed.(0);
  Alcotest.(check bool)
    "router 1's queue untouched by router 0's blackout" true
    (plain.(1) = perturbed.(1))

(* -- load index vs linear scan under health churn ------------------ *)

(* The push least-loaded policy routes through the router's O(1) load
   index ([v_least_loaded]).  This policy is its executable spec: a
   plain linear scan over the same view.  Under server flaps the two
   must stay trace-equal — any divergence means the index's min
   tracking broke under health churn. *)
let linear_least_loaded () =
  Cluster.Policy.v ~name:"linear-least-loaded" (fun ~servers ->
      let decide (view : Cluster.Policy.view) ~vcpus:_ ~needs_pool:_ =
        let best = ref (-1) in
        for i = 0 to servers - 1 do
          if
            view.Cluster.Policy.v_healthy i
            && (!best < 0
               || view.Cluster.Policy.v_live i < view.Cluster.Policy.v_live !best)
          then best := i
        done;
        if !best >= 0 then Cluster.Policy.Assign !best
        else Cluster.Policy.Enqueue
      in
      {
        Cluster.Policy.label = "linear-least-loaded";
        decide;
        on_completion = (fun _ ~server:_ -> []);
        on_rejection = (fun _ ~server:_ -> []);
        on_health_change = (fun _ ~server:_ ~up:_ -> []);
        on_provision = (fun ~server:_ ~count:_ -> ());
        on_claim_unused = (fun ~server:_ -> ());
      })

(* drop the "policy=<label> ..." header so differently-named policies
   can be compared byte-for-byte on the rest of the dump *)
let strip_policy_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s i (String.length s - i)
  | None -> s

let test_load_index_churn () =
  List.iter
    (fun routers ->
      List.iter
        (fun seed ->
          let dump policy =
            strip_policy_line
              (dump_cluster
                 (router_storm ~policy ~routers ~seed ~shards:2 ~flaps:true ()))
          in
          Alcotest.(check string)
            (Printf.sprintf "routers=%d seed=%d: load index == linear scan"
               routers seed)
            (dump (linear_least_loaded ()))
            (dump (Cluster.Policy.push ~routing:Cluster.Least_loaded ())))
        [ 1; 42; 1337 ])
    [ 1; 2 ]

(* Print the digest of every storm trace and exit — used once to pin
   the golden digests above against the single-router build. *)
let () =
  if Sys.getenv_opt "HORSE_DUMP_GOLDEN" <> None then begin
    List.iter
      (fun policy ->
        List.iter
          (fun faulty ->
            List.iter
              (fun seed ->
                let c = sharded_storm ~policy ~seed ~shards:2 ~faulty () in
                Printf.printf "(\"%s\", %b, %d, \"%s\");\n"
                  (Cluster.Policy.name policy) faulty seed
                  (Digest.to_hex (Digest.string (dump_cluster c))))
              [ 1; 42; 1337 ])
          [ false; true ])
      (Cluster.Policy.builtins ());
    exit 0
  end

let () =
  Alcotest.run "horse_shard"
    [
      ( "determinism",
        [
          Alcotest.test_case "storm: shards 1/2/4 bit-identical" `Quick
            test_storm_invariance;
          Alcotest.test_case "storm with blackouts: bit-identical" `Quick
            test_storm_invariance_faulty;
          Alcotest.test_case "storms under every policy: bit-identical" `Quick
            test_storm_invariance_policies;
          Alcotest.test_case "adaptive == lock-step on storms" `Quick
            test_scheduler_equivalence;
          Alcotest.test_case "gap/clump: fast-forward, identical traces"
            `Quick test_fast_forward_equivalence;
          Alcotest.test_case "model-based vs sequential oracle" `Slow
            test_model_based;
          Alcotest.test_case "model-based gap/clump vs both oracles" `Slow
            test_model_based_gap_clump;
          Alcotest.test_case "model-based oracle per policy" `Slow
            test_model_based_policies;
          Alcotest.test_case "routers=1 golden traces" `Quick
            test_golden_traces;
        ] );
      ( "router plane",
        [
          Alcotest.test_case "multi-router storms bit-identical" `Quick
            test_router_invariance;
          Alcotest.test_case "multi-router storms per policy" `Quick
            test_router_invariance_policies;
          Alcotest.test_case "dry-warm spill rides the ring" `Quick
            test_spill_dry_warm;
          Alcotest.test_case "all-down spill; pinned never spills" `Quick
            test_spill_all_down_and_pinned;
          Alcotest.test_case "pull claims FIFO per router" `Quick
            test_pull_fifo_per_router;
          Alcotest.test_case "load index == linear scan under flaps" `Quick
            test_load_index_churn;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "scale row shards-invariant" `Quick
            test_scale_invariant;
          Alcotest.test_case "faults rows shards-invariant" `Slow
            test_faults_invariant;
          Alcotest.test_case "colocation rows shards-invariant" `Slow
            test_colocation_invariant;
        ] );
      ( "engine",
        [
          Alcotest.test_case "message delivery order" `Quick test_post_ordering;
          Alcotest.test_case "channel-bound posts never land in-window" `Quick
            test_channel_bound_property;
          Alcotest.test_case "in-window post rejected" `Quick
            test_post_inside_window_rejected;
        ] );
    ]
