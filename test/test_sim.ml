(* Tests for horse_sim: virtual time, the heap and event queue, the
   engine's determinism, statistics and the metric registry. *)

module Time = Horse_sim.Time_ns
module Rng = Horse_sim.Rng
module Heap = Horse_sim.Binary_heap
module Eq = Horse_sim.Event_queue
module Eqr = Horse_sim.Event_queue_reference
module Engine = Horse_sim.Engine
module Stats = Horse_sim.Stats
module Metrics = Horse_sim.Metrics

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let test_time_arithmetic () =
  let t = Time.add Time.zero (Time.span_ns 500) in
  Alcotest.(check int) "add" 500 (Time.to_ns t);
  let t2 = Time.add t (Time.span_us 1.0) in
  Alcotest.(check int) "us" 1500 (Time.to_ns t2);
  Alcotest.(check int) "diff" 1000 (Time.span_to_ns (Time.diff t2 t));
  Alcotest.check_raises "negative diff"
    (Invalid_argument "Time_ns.diff: negative interval") (fun () ->
      ignore (Time.diff t t2))

let test_time_conversions () =
  Alcotest.(check int) "ms" 2_500_000 (Time.span_to_ns (Time.span_ms 2.5));
  Alcotest.(check int) "s" 1_000_000_000 (Time.span_to_ns (Time.span_s 1.0));
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Time.span_to_us (Time.span_ns 1500));
  Alcotest.check_raises "negative span"
    (Invalid_argument "Time_ns.span_ns: negative") (fun () ->
      ignore (Time.span_ns (-1)))

let test_span_ops () =
  let a = Time.span_ns 300 and b = Time.span_ns 200 in
  Alcotest.(check int) "add" 500 (Time.span_to_ns (Time.add_span a b));
  Alcotest.(check int) "sub" 100 (Time.span_to_ns (Time.sub_span a b));
  Alcotest.(check int) "scale" 900 (Time.span_to_ns (Time.scale_span 3 a));
  Alcotest.(check int) "max" 300 (Time.span_to_ns (Time.max_span a b))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Rng.float r 2.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.0)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 5" true (abs_float (mean -. 5.0) < 0.2)

let test_rng_pareto_shape () =
  (* Pareto(shape=2, scale=1): mean = shape*scale/(shape-1) = 2 *)
  let r = Rng.create ~seed:5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.pareto r ~shape:2.0 ~scale:1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 2" mean)
    true
    (mean > 1.8 && mean < 2.2);
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Rng.pareto: shape and scale must be positive") (fun () ->
      ignore (Rng.pareto r ~shape:0.0 ~scale:1.0))

let test_rng_lognormal_median () =
  (* median of lognormal(mu, sigma) is e^mu *)
  let r = Rng.create ~seed:6 in
  let n = 20_001 in
  let draws = Array.init n (fun _ -> Rng.lognormal r ~mu:2.0 ~sigma:0.7) in
  Array.sort Float.compare draws;
  let median = draws.(n / 2) in
  let expected = exp 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "median %.3f near %.3f" median expected)
    true
    (Float.abs (median -. expected) /. expected < 0.05)

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:8 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle r b;
  Alcotest.(check bool) "same multiset" true
    (List.sort Int.compare (Array.to_list b) = Array.to_list a);
  Alcotest.(check bool) "actually moved" true (a <> b)

let test_rng_split_independent () =
  let r = Rng.create ~seed:9 in
  let s = Rng.split r in
  (* The split stream must not simply replay the parent's. *)
  Alcotest.(check bool) "different" true (Rng.bits64 r <> Rng.bits64 s)

let test_rng_derive_streams () =
  (* keyed derivation: reproducible per index, distinct across
     indices, and the parent is left untouched *)
  let parent = Rng.create ~seed:123 in
  let draws index = Rng.bits64 (Rng.derive parent ~index) in
  Alcotest.(check bool) "reproducible" true (draws 5 = draws 5);
  let firsts = List.init 32 draws in
  Alcotest.(check int) "pairwise distinct" 32
    (List.length (List.sort_uniq Int64.compare firsts));
  let fresh = Rng.create ~seed:123 in
  Alcotest.(check bool) "parent not advanced" true
    (Rng.bits64 parent = Rng.bits64 fresh);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.derive: negative index") (fun () ->
      ignore (Rng.derive parent ~index:(-1)))

(* ------------------------------------------------------------------ *)
(* Binary heap                                                         *)
(* ------------------------------------------------------------------ *)

let test_heap_orders () =
  let h = Heap.create ~compare:Int.compare () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 8; 9 ]
    (let rec drain acc =
       match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
     in
     drain [])

let test_heap_peek_pop () =
  let h = Heap.create ~compare:Int.compare () in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 4;
  Alcotest.(check (option int)) "peek" (Some 4) (Heap.peek h);
  Alcotest.(check int) "length" 1 (Heap.length h);
  Alcotest.(check (option int)) "pop" (Some 4) (Heap.pop h);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Binary_heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_grows () =
  let h = Heap.create ~capacity:2 ~compare:Int.compare () in
  for i = 100 downto 1 do
    Heap.push h i
  done;
  Alcotest.(check int) "length" 100 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "to_sorted_list" (List.init 100 (fun i -> i + 1))
    (Heap.to_sorted_list h);
  Alcotest.(check int) "non destructive" 100 (Heap.length h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck2.Gen.(list_size (0 -- 200) int)
    (fun xs ->
      let h = Heap.create ~compare:Int.compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let at ns = Time.of_ns ns

let test_eq_ordering () =
  let q = Eq.create () in
  ignore (Eq.schedule q ~at:(at 30) "c");
  ignore (Eq.schedule q ~at:(at 10) "a");
  ignore (Eq.schedule q ~at:(at 20) "b");
  let pop () = snd (Option.get (Eq.pop q)) in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let test_eq_fifo_ties () =
  let q = Eq.create () in
  ignore (Eq.schedule q ~at:(at 5) "first");
  ignore (Eq.schedule q ~at:(at 5) "second");
  ignore (Eq.schedule q ~at:(at 5) "third");
  let pop () = snd (Option.get (Eq.pop q)) in
  Alcotest.(check string) "fifo 1" "first" (pop ());
  Alcotest.(check string) "fifo 2" "second" (pop ());
  Alcotest.(check string) "fifo 3" "third" (pop ())

let test_eq_cancel () =
  let q = Eq.create () in
  let h = Eq.schedule q ~at:(at 1) "x" in
  ignore (Eq.schedule q ~at:(at 2) "y");
  Alcotest.(check bool) "cancel ok" true (Eq.cancel q h);
  Alcotest.(check bool) "cancel twice" false (Eq.cancel q h);
  Alcotest.(check int) "length" 1 (Eq.length q);
  Alcotest.(check string) "skips cancelled" "y" (snd (Option.get (Eq.pop q)));
  Alcotest.(check bool) "drained" true (Eq.is_empty q)

let test_eq_next_time () =
  let q = Eq.create () in
  Alcotest.(check bool) "empty" true (Eq.next_time q = None);
  let h = Eq.schedule q ~at:(at 9) () in
  Alcotest.(check bool) "next" true (Eq.next_time q = Some (at 9));
  ignore (Eq.cancel q h);
  Alcotest.(check bool) "after cancel" true (Eq.next_time q = None)

let test_eq_pop_until () =
  let q = Eq.create () in
  ignore (Eq.schedule q ~at:(at 10) "a");
  ignore (Eq.schedule q ~at:(at 20) "b");
  ignore (Eq.schedule q ~at:(at 30) "c");
  Alcotest.(check bool) "limit before first: None" true
    (Eq.pop_until q ~limit:(Some (at 5)) = None);
  Alcotest.(check int) "nothing consumed" 3 (Eq.length q);
  Alcotest.(check bool) "limit inclusive" true
    (Eq.pop_until q ~limit:(Some (at 10)) = Some (at 10, "a"));
  Alcotest.(check bool) "limit between events" true
    (Eq.pop_until q ~limit:(Some (at 25)) = Some (at 20, "b"));
  Alcotest.(check bool) "no limit pops" true
    (Eq.pop_until q ~limit:None = Some (at 30, "c"));
  Alcotest.(check bool) "empty" true (Eq.pop_until q ~limit:None = None)

let test_eq_ring_heap_fifo_boundary () =
  (* Equal timestamps must stay FIFO even when the two events live in
     different internal structures: "far" lands in the heap (scheduled
     4096+ns out), then after the clock advances "late" lands in the
     near-horizon ring at the very same timestamp. *)
  let q = Eq.create () in
  ignore (Eq.schedule q ~at:(at 3000) "warm");
  ignore (Eq.schedule q ~at:(at 5000) "far");
  Alcotest.(check string) "advance clock" "warm" (snd (Option.get (Eq.pop q)));
  ignore (Eq.schedule q ~at:(at 5000) "late");
  Alcotest.(check string) "heap event first (older seq)" "far"
    (snd (Option.get (Eq.pop q)));
  Alcotest.(check string) "ring event second" "late"
    (snd (Option.get (Eq.pop q)));
  (* the exact near/far split: clock is now 5000, so 5000+4095 is the
     last ring tick and 5000+4096 the first heap-bound timestamp *)
  ignore (Eq.schedule q ~at:(at (5000 + 4096)) "first-heap");
  ignore (Eq.schedule q ~at:(at (5000 + 4095)) "last-ring");
  Alcotest.(check string) "edge order 1" "last-ring"
    (snd (Option.get (Eq.pop q)));
  Alcotest.(check string) "edge order 2" "first-heap"
    (snd (Option.get (Eq.pop q)));
  Alcotest.(check bool) "drained" true (Eq.is_empty q)

let test_eq_handle_reuse () =
  (* Freed slots are recycled with a bumped generation: handles to
     dead events must stay dead even after their slot is reused. *)
  let q = Eq.create () in
  let h1 = Eq.schedule q ~at:(at 10) "x" in
  Alcotest.(check bool) "cancel live" true (Eq.cancel q h1);
  let h2 = Eq.schedule q ~at:(at 20) "y" in
  Alcotest.(check bool) "stale handle, reused slot" false (Eq.cancel q h1);
  Alcotest.(check int) "one live event" 1 (Eq.length q);
  Alcotest.(check bool) "survivor pops" true (Eq.pop q = Some (at 20, "y"));
  Alcotest.(check bool) "cancel after pop" false (Eq.cancel q h2);
  Alcotest.(check bool) "empty" true (Eq.is_empty q)

(* The oracle for the flat arena+ring+heap queue: drive seeded random
   op scripts (schedules across the near/far split, pops, cancels of
   live / already-cancelled / already-popped handles, and a full final
   drain) through both the production queue and the boxed-cell
   reference via the model-based harness, requiring identical
   observable behaviour: pop results, cancel verdicts, lengths and
   next_time after every step.  On divergence the harness shrinks the
   script to a minimal one and prints the replay seed. *)

type eq_op = Schedule of int | Qpop | Cancel of int | Drain

let eq_spec : eq_op Harness.spec =
  {
    Harness.name = "flat event queue vs boxed reference";
    gen =
      (fun st ->
        match Random.State.int st 9 with
        | 0 | 1 | 2 | 3 -> Schedule (Random.State.int st 10_000)
        | 4 | 5 -> Qpop
        | 6 | 7 -> Cancel (Random.State.int st (1 lsl 20))
        | _ -> Drain);
    show =
      (function
      | Schedule d -> Printf.sprintf "Schedule %d" d
      | Qpop -> "Qpop"
      | Cancel k -> Printf.sprintf "Cancel %d" k
      | Drain -> "Drain");
    make =
      (fun () ->
        let q = Eq.create () in
        let r = Eqr.create () in
        let handles = ref [||] in
        let nhandles = ref 0 in
        let remember h1 h2 =
          if !nhandles = Array.length !handles then begin
            let grown = Array.make (max 8 (2 * !nhandles)) (None, None) in
            Array.blit !handles 0 grown 0 !nhandles;
            handles := grown
          end;
          !handles.(!nhandles) <- (Some h1, Some h2);
          incr nhandles
        in
        let now = ref 0 in
        let tag = ref 0 in
        let pop_once () =
          match (Eq.pop q, Eqr.pop r) with
          | None, None -> Ok false
          | Some (t1, v1), Some (t2, v2) when Time.equal t1 t2 && v1 = v2 ->
            now := Time.to_ns t1;
            Ok true
          | _ -> Error "pop diverged"
        in
        fun op ->
          let step_diff =
            match op with
            | Schedule d ->
              (* relative to the last popped time, so deltas straddle
                 the queue's 4096ns near-horizon window *)
              let at_ns = at (!now + d) in
              incr tag;
              remember (Eq.schedule q ~at:at_ns !tag)
                (Eqr.schedule r ~at:at_ns !tag);
              None
            | Qpop -> (
              match pop_once () with Ok _ -> None | Error e -> Some e)
            | Cancel k ->
              if !nhandles = 0 then None
              else (
                match !handles.(k mod !nhandles) with
                | Some h1, Some h2 ->
                  if Eq.cancel q h1 <> Eqr.cancel r h2 then
                    Some "cancel verdict diverged"
                  else None
                | _ -> None)
            | Drain ->
              let rec go () =
                match pop_once () with
                | Ok true -> go ()
                | Ok false ->
                  if Eq.is_empty q && Eqr.is_empty r then None
                  else Some "drain left residue"
                | Error e -> Some e
              in
              go ()
          in
          match step_diff with
          | Some _ as d -> d
          | None ->
            if Eq.length q <> Eqr.length r then
              Some
                (Printf.sprintf "length %d (flat) vs %d (reference)"
                   (Eq.length q) (Eqr.length r))
            else if Eq.next_time q <> Eqr.next_time r then
              Some "next_time diverged"
            else None);
  }

let test_eq_matches_reference () = Harness.check ~scripts:12 ~len:150 eq_spec

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                         *)
(* ------------------------------------------------------------------ *)

module Tw = Horse_sim.Timer_wheel

let test_wheel_orders () =
  let w = Tw.create () in
  List.iter
    (fun (ns, tag) -> ignore (Tw.schedule w ~at:(at ns) tag))
    [ (300, "c"); (10, "a"); (200, "b"); (5_000_000, "e"); (70_000, "d") ];
  let drain () =
    let rec go acc =
      match Tw.pop w with
      | None -> List.rev acc
      | Some (_, tag) -> go (tag :: acc)
    in
    go []
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "d"; "e" ] (drain ())

let test_wheel_fifo_ties () =
  let w = Tw.create () in
  ignore (Tw.schedule w ~at:(at 42) "first");
  ignore (Tw.schedule w ~at:(at 42) "second");
  ignore (Tw.schedule w ~at:(at 42) "third");
  let pop () = snd (Option.get (Tw.pop w)) in
  Alcotest.(check string) "1" "first" (pop ());
  Alcotest.(check string) "2" "second" (pop ());
  Alcotest.(check string) "3" "third" (pop ())

let test_wheel_cancel () =
  let w = Tw.create () in
  let h = Tw.schedule w ~at:(at 10) "x" in
  ignore (Tw.schedule w ~at:(at 20) "y");
  Alcotest.(check bool) "cancel" true (Tw.cancel w h);
  Alcotest.(check bool) "cancel twice" false (Tw.cancel w h);
  Alcotest.(check int) "length" 1 (Tw.length w);
  Alcotest.(check string) "skips cancelled" "y" (snd (Option.get (Tw.pop w)))

let test_wheel_overflow_horizon () =
  (* events beyond slots^levels land in the overflow and still fire *)
  let w = Tw.create ~levels:2 ~slots:4 () in
  (* horizon = 16 ticks *)
  ignore (Tw.schedule w ~at:(at 1000) "far");
  ignore (Tw.schedule w ~at:(at 3) "near");
  Alcotest.(check string) "near first" "near" (snd (Option.get (Tw.pop w)));
  Alcotest.(check string) "far still fires" "far" (snd (Option.get (Tw.pop w)));
  Alcotest.(check bool) "empty" true (Tw.is_empty w)

let test_wheel_rejects_past () =
  let w = Tw.create () in
  ignore (Tw.schedule w ~at:(at 100) ());
  ignore (Tw.pop w);
  Alcotest.(check int) "clock" 100 (Horse_sim.Time_ns.to_ns (Tw.now w));
  Alcotest.check_raises "past"
    (Invalid_argument "Timer_wheel.schedule: timestamp before the wheel clock")
    (fun () -> ignore (Tw.schedule w ~at:(at 50) ()))

let test_wheel_next_time () =
  let w = Tw.create () in
  Alcotest.(check bool) "empty" true (Tw.next_time w = None);
  ignore (Tw.schedule w ~at:(at 777) ());
  Alcotest.(check bool) "set" true (Tw.next_time w = Some (at 777))

(* The oracle: interleave random schedules and pops on both structures
   and require identical observable traces, including FIFO ties. *)
let prop_wheel_matches_event_queue =
  QCheck2.Test.make
    ~name:"timer wheel trace == event queue trace (random interleavings)"
    ~count:200
    QCheck2.Gen.(
      list_size (1 -- 120)
        (oneof
           [
             map (fun d -> `Schedule d) (0 -- 2_000_000);
             return `Pop;
           ]))
    (fun script ->
      let w = Tw.create ~levels:3 ~slots:8 () in
      let q = Eq.create () in
      let tag = ref 0 in
      let wheel_now = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Schedule delta ->
            (* keep timestamps legal for the wheel: never in its past *)
            let at_ns = !wheel_now + delta in
            incr tag;
            ignore (Tw.schedule w ~at:(at at_ns) !tag);
            ignore (Eq.schedule q ~at:(at at_ns) !tag)
          | `Pop -> (
            match (Tw.pop w, Eq.pop q) with
            | None, None -> ()
            | Some (t1, v1), Some (t2, v2) ->
              if not (Time.equal t1 t2 && v1 = v2) then ok := false;
              wheel_now := Time.to_ns t1
            | Some _, None | None, Some _ -> ok := false))
        script;
      (* drain both to the end *)
      let rec drain () =
        match (Tw.pop w, Eq.pop q) with
        | None, None -> ()
        | Some (t1, v1), Some (t2, v2) ->
          if not (Time.equal t1 t2 && v1 = v2) then ok := false
          else drain ()
        | Some _, None | None, Some _ -> ok := false
      in
      drain ();
      !ok)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag t = log := (tag, Time.to_ns (Engine.now t)) :: !log in
  ignore (Engine.schedule e ~after:(Time.span_ns 20) (note "b"));
  ignore (Engine.schedule e ~after:(Time.span_ns 10) (note "a"));
  ignore (Engine.schedule e ~after:(Time.span_ns 30) (note "c"));
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "ordered" [ ("a", 10); ("b", 20); ("c", 30) ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore
    (Engine.schedule e ~after:(Time.span_ns 5) (fun t ->
         incr fired;
         ignore
           (Engine.schedule t ~after:(Time.span_ns 5) (fun _ -> incr fired))));
  Engine.run e;
  Alcotest.(check int) "both fired" 2 !fired;
  Alcotest.(check int) "clock at 10" 10 (Time.to_ns (Engine.now e))

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun ns ->
      ignore
        (Engine.schedule e ~after:(Time.span_ns ns) (fun _ ->
             fired := ns :: !fired)))
    [ 10; 20; 30 ];
  Engine.run ~until:(at 20) e;
  Alcotest.(check (list int)) "only up to 20" [ 10; 20 ] (List.rev !fired);
  Alcotest.(check int) "clock parked" 20 (Time.to_ns (Engine.now e));
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "rest fired" [ 10; 20; 30 ] (List.rev !fired)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~after:(Time.span_ns 5) (fun _ -> fired := true) in
  Alcotest.(check bool) "cancelled" true (Engine.cancel e h);
  Engine.run e;
  Alcotest.(check bool) "not fired" false !fired

let test_engine_past_schedule_rejected () =
  let e = Engine.create () in
  ignore
    (Engine.schedule e ~after:(Time.span_ns 10) (fun t ->
         Alcotest.check_raises "past"
           (Invalid_argument "Engine.schedule_at: timestamp in the past")
           (fun () -> ignore (Engine.schedule_at t ~at:(at 3) (fun _ -> ())))));
  Engine.run e

let test_engine_reentrant_run_rejected () =
  let e = Engine.create () in
  let caught = ref None in
  ignore
    (Engine.schedule e ~after:(Time.span_ns 37) (fun _ ->
         try Engine.run e
         with Invalid_argument msg -> caught := Some msg));
  Engine.run e;
  match !caught with
  | None -> Alcotest.fail "re-entrant Engine.run did not raise"
  | Some msg ->
    Alcotest.(check string) "message names the virtual time"
      "Engine.run: re-entrant call at virtual time 37ns (the engine is \
       already draining its event queue; schedule a callback instead)"
      msg

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  ignore (Engine.schedule e ~after:(Time.span_ns 1) (fun _ -> ()));
  Alcotest.(check bool) "steps once" true (Engine.step e);
  Alcotest.(check bool) "then empty" false (Engine.step e)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_online_stats () =
  let s = Stats.Online.create () in
  List.iter (Stats.Online.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Online.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Online.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Stats.Online.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Online.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Online.max s)

let test_online_empty () =
  let s = Stats.Online.create () in
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.Online.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.Online.variance s);
  Alcotest.check_raises "min" (Invalid_argument "Stats.Online.min: empty")
    (fun () -> ignore (Stats.Online.min s))

let test_sample_percentiles () =
  let s = Stats.Sample.create () in
  for i = 1 to 100 do
    Stats.Sample.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.Sample.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.Sample.percentile s 100.0);
  Alcotest.(check (float 1e-6)) "p50" 50.5 (Stats.Sample.percentile s 50.0);
  Alcotest.(check (float 1e-6)) "p99" 99.01 (Stats.Sample.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.Sample.mean s)

let test_sample_interleaved_reads () =
  (* Percentile queries between adds must not lose observations. *)
  let s = Stats.Sample.create () in
  Stats.Sample.add s 10.0;
  ignore (Stats.Sample.percentile s 50.0);
  Stats.Sample.add s 20.0;
  Alcotest.(check int) "count" 2 (Stats.Sample.count s);
  Alcotest.(check (float 1e-9)) "p100" 20.0 (Stats.Sample.percentile s 100.0)

let prop_percentile_matches_sorted =
  QCheck2.Test.make ~name:"percentile agrees with exact rank on sorted data"
    ~count:200
    QCheck2.Gen.(list_size (1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) xs;
      let sorted = List.sort Float.compare xs in
      let last = List.nth sorted (List.length sorted - 1) in
      Stats.Sample.percentile s 100.0 = last
      && Stats.Sample.percentile s 0.0 = List.hd sorted)

(* ------------------------------------------------------------------ *)
(* Streaming quantiles vs the exact sample oracle                      *)
(* ------------------------------------------------------------------ *)

let test_quantile_small_exact () =
  (* five or fewer observations answer exactly, any percentile, with
     Sample's closest-ranks rule *)
  let q = Stats.Quantile.create () in
  let s = Stats.Sample.create () in
  List.iter
    (fun v ->
      Stats.Quantile.add q v;
      Stats.Sample.add s v)
    [ 9.0; 1.0; 5.0; 2.0 ];
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g" p)
        (Stats.Sample.percentile s p)
        (Stats.Quantile.percentile q p))
    [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ]

let test_quantile_rejects () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.Quantile.percentile: empty") (fun () ->
      ignore (Stats.Quantile.percentile (Stats.Quantile.create ()) 50.0));
  Alcotest.check_raises "bad target"
    (Invalid_argument "Stats.Quantile.create: target outside (0,1)")
    (fun () -> ignore (Stats.Quantile.create ~quantiles:[| 1.5 |] ()));
  let q = Stats.Quantile.create ~quantiles:[| 0.5 |] () in
  for i = 1 to 100 do
    Stats.Quantile.add q (float_of_int i)
  done;
  Alcotest.check_raises "untracked percentile on a long stream"
    (Invalid_argument "Stats.Quantile.percentile: not a configured target")
    (fun () -> ignore (Stats.Quantile.percentile q 75.0))

(* Model-based: every op appends one draw to both the P² estimator and
   the exact Sample oracle; at periodic checkpoints the streaming
   estimate must stay inside the distribution's tolerance band.  One
   spec per draw shape — P² is tight on smooth unimodal data, the
   median of well-separated bimodal data is its known weak spot, so
   that check only pins the estimate inside the support. *)
let quantile_spec ~name ~draw ~checks =
  {
    Harness.name;
    gen = draw;
    show = (fun v -> Printf.sprintf "%.3f" v);
    make =
      (fun () ->
        let sample = Stats.Sample.create () in
        let q =
          Stats.Quantile.create ~quantiles:[| 0.5; 0.99; 0.999 |] ()
        in
        fun v ->
          Stats.Sample.add sample v;
          Stats.Quantile.add q v;
          let n = Stats.Sample.count sample in
          if n < 500 || n mod 500 <> 0 then None
          else
            List.fold_left
              (fun acc (p, ok) ->
                match acc with
                | Some _ -> acc
                | None ->
                  let exact = Stats.Sample.percentile sample p in
                  let est = Stats.Quantile.percentile q p in
                  if ok ~exact ~est then None
                  else
                    Some
                      (Printf.sprintf
                         "p%g at n=%d: exact %.3f, streaming %.3f" p n
                         exact est))
              None checks);
  }

let rel tol ~exact ~est =
  Float.abs (est -. exact) <= tol *. Float.max 1.0 (Float.abs exact)

let within lo hi ~exact:_ ~est = est >= lo && est <= hi

let test_quantile_uniform () =
  Harness.check ~scripts:6 ~len:2500
    (quantile_spec ~name:"quantile/uniform"
       ~draw:(fun st -> Random.State.float st 1000.0)
       ~checks:[ (50.0, rel 0.10); (99.0, rel 0.10); (99.9, rel 0.15) ])

let test_quantile_exponential () =
  Harness.check ~scripts:6 ~len:2500
    (quantile_spec ~name:"quantile/exponential"
       ~draw:(fun st -> -200.0 *. log (1.0 -. Random.State.float st 1.0))
       ~checks:[ (50.0, rel 0.10); (99.0, rel 0.25); (99.9, rel 0.40) ])

let test_quantile_bimodal () =
  Harness.check ~scripts:6 ~len:2500
    (quantile_spec ~name:"quantile/bimodal"
       ~draw:(fun st ->
         (if Random.State.bool st then 100.0 else 900.0)
         +. Random.State.float st 10.0)
       ~checks:
         [
           (* the median sits in the gap between the modes: P² may
              interpolate anywhere inside the support *)
           (50.0, within 100.0 910.0);
           (99.0, rel 0.15);
           (99.9, rel 0.15);
         ])

(* Adversarial streams: shapes a randomized draw never produces.
   P²'s markers must survive degenerate and fully-sorted input — the
   parabolic update divides by marker gaps that these streams drive
   toward zero. *)
let test_quantile_adversarial () =
  let targets = [| 0.5; 0.99; 0.999 |] in
  let ps = [ 50.0; 99.0; 99.9 ] in
  (* all-equal: every marker collapses onto the one observed value *)
  let q = Stats.Quantile.create ~quantiles:targets () in
  for _ = 1 to 10_000 do
    Stats.Quantile.add q 42.0
  done;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "all-equal p%g" p)
        42.0
        (Stats.Quantile.percentile q p))
    ps;
  (* monotone ramps, both directions: the sorted stream keeps every
     new observation on the same side of the markers; the estimate
     must still land near the exact rank *)
  let ramp name values =
    let q = Stats.Quantile.create ~quantiles:targets () in
    let s = Stats.Sample.create () in
    List.iter
      (fun v ->
        Stats.Quantile.add q v;
        Stats.Sample.add s v)
      values;
    List.iter
      (fun p ->
        let exact = Stats.Sample.percentile s p in
        let est = Stats.Quantile.percentile q p in
        Alcotest.(check bool)
          (Printf.sprintf "%s p%g: %.1f vs exact %.1f" name p est exact)
          true
          (Float.abs (est -. exact) <= 0.05 *. Float.abs exact))
      ps
  in
  let n = 10_000 in
  ramp "ascending ramp" (List.init n (fun i -> float_of_int (i + 1)));
  ramp "descending ramp" (List.init n (fun i -> float_of_int (n - i)))

let test_quantile_queries_pure () =
  (* percentile reads after observation start are pure: a stream
     interrogated at every checkpoint ends with bit-identical
     estimates to an uninterrupted one *)
  let targets = [| 0.5; 0.99; 0.999 |] in
  let queried = Stats.Quantile.create ~quantiles:targets () in
  let silent = Stats.Quantile.create ~quantiles:targets () in
  let rng = Rng.create ~seed:7 in
  for i = 1 to 5_000 do
    let v = Rng.float rng 1000.0 in
    Stats.Quantile.add queried v;
    Stats.Quantile.add silent v;
    if i mod 10 = 0 then ignore (Stats.Quantile.percentile queried 99.0)
  done;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g unperturbed" p)
        (Stats.Quantile.percentile silent p)
        (Stats.Quantile.percentile queried p))
    [ 50.0; 99.0; 99.9 ]

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Stats.Histogram.add h) [ -1.0; 0.5; 3.0; 9.9; 15.0 ];
  Alcotest.(check int) "count" 5 (Stats.Histogram.count h);
  Alcotest.(check int) "under" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "over" 1 (Stats.Histogram.overflow h);
  Alcotest.(check (array int)) "buckets" [| 1; 1; 0; 0; 1 |]
    (Stats.Histogram.bucket_counts h)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "resumes";
  Metrics.incr m ~by:3 "resumes";
  Alcotest.(check int) "counter" 4 (Metrics.counter m "resumes");
  Alcotest.(check int) "unknown" 0 (Metrics.counter m "nope");
  Alcotest.(check (list (pair string int)))
    "listing" [ ("resumes", 4) ] (Metrics.counters m)

let test_metrics_samples () =
  let m = Metrics.create () in
  Metrics.observe m "latency" 5.0;
  Metrics.observe_span m "latency" (Time.span_ns 15);
  let s = Option.get (Metrics.sample m "latency") in
  Alcotest.(check int) "count" 2 (Stats.Sample.count s);
  Alcotest.(check (float 1e-9)) "mean" 10.0 (Stats.Sample.mean s);
  Alcotest.(check bool) "missing" true (Metrics.sample m "none" = None)

(* The engine must fire callbacks in timestamp order with FIFO ties,
   even when callbacks schedule further events. *)
let prop_engine_fires_in_order =
  QCheck2.Test.make ~name:"engine fires in order under nested scheduling"
    ~count:200
    QCheck2.Gen.(list_size (1 -- 40) (pair (0 -- 10_000) (0 -- 500)))
    (fun script ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i (base, extra) ->
          ignore
            (Engine.schedule e ~after:(Time.span_ns base) (fun t ->
                 fired := (Time.to_ns (Engine.now t), 2 * i) :: !fired;
                 (* nested event strictly later or equal *)
                 ignore
                   (Engine.schedule t ~after:(Time.span_ns extra) (fun t ->
                        fired :=
                          (Time.to_ns (Engine.now t), (2 * i) + 1) :: !fired)))))
        script;
      Engine.run e;
      let trace = List.rev !fired in
      (* timestamps non-decreasing *)
      let rec monotone = function
        | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && monotone rest
        | [ _ ] | [] -> true
      in
      monotone trace && List.length trace = 2 * List.length script)

let prop_engine_clock_matches_event_time =
  QCheck2.Test.make ~name:"engine clock equals the firing event's timestamp"
    ~count:100
    QCheck2.Gen.(list_size (1 -- 30) (0 -- 100_000))
    (fun delays ->
      let e = Engine.create () in
      let ok = ref true in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule e ~after:(Time.span_ns d) (fun t ->
                 if Time.to_ns (Engine.now t) <> d then ok := false)))
        delays;
      Engine.run e;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heap_sorts;
      prop_percentile_matches_sorted;
      prop_wheel_matches_event_queue;
      prop_engine_fires_in_order;
      prop_engine_clock_matches_event_time;
    ]

let () =
  Alcotest.run "horse_sim"
    [
      ( "time",
        [
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "span ops" `Quick test_span_ops;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto shape" `Quick test_rng_pareto_shape;
          Alcotest.test_case "lognormal median" `Quick test_rng_lognormal_median;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "derive streams" `Quick test_rng_derive_streams;
        ] );
      ( "heap",
        [
          Alcotest.test_case "orders" `Quick test_heap_orders;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          Alcotest.test_case "grows" `Quick test_heap_grows;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_eq_cancel;
          Alcotest.test_case "next_time" `Quick test_eq_next_time;
          Alcotest.test_case "pop_until" `Quick test_eq_pop_until;
          Alcotest.test_case "ring/heap FIFO boundary" `Quick
            test_eq_ring_heap_fifo_boundary;
          Alcotest.test_case "handle reuse" `Quick test_eq_handle_reuse;
          Alcotest.test_case "matches boxed reference (harness scripts)"
            `Quick test_eq_matches_reference;
        ] );
      ( "timer_wheel",
        [
          Alcotest.test_case "orders" `Quick test_wheel_orders;
          Alcotest.test_case "FIFO ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "overflow horizon" `Quick
            test_wheel_overflow_horizon;
          Alcotest.test_case "rejects past" `Quick test_wheel_rejects_past;
          Alcotest.test_case "next_time" `Quick test_wheel_next_time;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "rejects past" `Quick
            test_engine_past_schedule_rejected;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "re-entrant run rejected" `Quick
            test_engine_reentrant_run_rejected;
        ] );
      ( "stats",
        [
          Alcotest.test_case "online" `Quick test_online_stats;
          Alcotest.test_case "online empty" `Quick test_online_empty;
          Alcotest.test_case "percentiles" `Quick test_sample_percentiles;
          Alcotest.test_case "interleaved reads" `Quick
            test_sample_interleaved_reads;
          Alcotest.test_case "quantile small exact" `Quick
            test_quantile_small_exact;
          Alcotest.test_case "quantile rejects" `Quick test_quantile_rejects;
          Alcotest.test_case "quantile vs sample: uniform (harness)" `Quick
            test_quantile_uniform;
          Alcotest.test_case "quantile vs sample: exponential (harness)"
            `Quick test_quantile_exponential;
          Alcotest.test_case "quantile vs sample: bimodal (harness)" `Quick
            test_quantile_bimodal;
          Alcotest.test_case "quantile adversarial streams" `Quick
            test_quantile_adversarial;
          Alcotest.test_case "quantile queries are pure" `Quick
            test_quantile_queries_pure;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "samples" `Quick test_metrics_samples;
        ] );
      ("properties", props);
    ]
