(* Tests for horse_trace: the Azure dataset schema, the synthetic
   generator's statistical shape and the arrival samplers. *)

module Azure = Horse_trace.Azure
module Synthetic = Horse_trace.Synthetic
module Arrivals = Horse_trace.Arrivals
module Rng = Horse_sim.Rng
module Time = Horse_sim.Time_ns

let flat_counts value = Array.make Azure.minutes_per_day value

let sample_row ?(counts = flat_counts 0) () =
  Azure.make_row ~owner:"o1" ~app:"a1" ~func:"f1" ~trigger:Azure.Http ~counts

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_row_validation () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Azure.make_row: counts must have 1440 entries")
    (fun () ->
      ignore
        (Azure.make_row ~owner:"o" ~app:"a" ~func:"f" ~trigger:Azure.Http
           ~counts:[| 1; 2 |]));
  let negative = flat_counts 0 in
  negative.(7) <- -1;
  Alcotest.check_raises "negative count"
    (Invalid_argument "Azure.make_row: negative count") (fun () ->
      ignore
        (Azure.make_row ~owner:"o" ~app:"a" ~func:"f" ~trigger:Azure.Http
           ~counts:negative))

let test_line_roundtrip () =
  let counts = flat_counts 0 in
  counts.(0) <- 3;
  counts.(719) <- 42;
  counts.(1439) <- 1;
  let row = sample_row ~counts () in
  let parsed = Azure.parse_line (Azure.to_line row) in
  Alcotest.(check string) "owner" row.Azure.owner parsed.Azure.owner;
  Alcotest.(check string) "func" row.Azure.func parsed.Azure.func;
  Alcotest.(check bool) "trigger" true (parsed.Azure.trigger = Azure.Http);
  Alcotest.(check (array int)) "counts" row.Azure.counts parsed.Azure.counts

let test_parse_rejects_garbage () =
  List.iter
    (fun line ->
      match Azure.parse_line line with
      | _ -> Alcotest.failf "accepted %S" (String.sub line 0 (min 30 (String.length line)))
      | exception Invalid_argument _ -> ())
    [
      "a,b,c";
      "a,b,c,http,1,2,3";
      "a,b,c,http," ^ String.concat "," (List.init 1440 (fun _ -> "x"));
    ]

let test_parse_string_skips_header () =
  let row = sample_row () in
  let contents = Azure.header_line ^ "\n" ^ Azure.to_line row ^ "\n\n" in
  let rows = Azure.parse_string contents in
  Alcotest.(check int) "one row" 1 (List.length rows)

let test_load_file () =
  let row = sample_row () in
  let path = Filename.temp_file "horse_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Azure.header_line ^ "\n" ^ Azure.to_line row ^ "\n");
      close_out oc;
      let rows = Azure.load_file path in
      Alcotest.(check int) "one row" 1 (List.length rows);
      Alcotest.(check string) "func" "f1" (List.hd rows).Azure.func)

let test_trigger_names () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Azure.trigger_to_string t)
        true
        (Azure.trigger_of_string (Azure.trigger_to_string t) = t))
    [ Azure.Http; Azure.Queue; Azure.Timer; Azure.Event; Azure.Storage;
      Azure.Orchestration; Azure.Others ];
  Alcotest.(check bool) "unknown maps to others" true
    (Azure.trigger_of_string "weird" = Azure.Others)

(* ------------------------------------------------------------------ *)
(* Synthetic generator                                                 *)
(* ------------------------------------------------------------------ *)

let test_generate_rows_shape () =
  let rows = Synthetic.generate_rows ~seed:1 ~functions:200 in
  Alcotest.(check int) "200 rows" 200 (List.length rows);
  let totals =
    List.map Azure.total_invocations rows |> List.sort Int.compare
  in
  let sum = List.fold_left ( + ) 0 totals in
  (* heavy tail: the top 10% of functions carry most invocations *)
  let top = List.filteri (fun i _ -> i >= 180) totals in
  let top_sum = List.fold_left ( + ) 0 top in
  Alcotest.(check bool) "positive mass" true (sum > 0);
  Alcotest.(check bool)
    (Printf.sprintf "skewed popularity (top decile %d of %d)" top_sum sum)
    true
    (float_of_int top_sum > 0.5 *. float_of_int sum)

let test_generate_row_rate () =
  let rng = Rng.create ~seed:2 in
  let row = Synthetic.generate_row ~rng ~id:0 ~mean_rate_per_min:10.0 in
  let mean =
    float_of_int (Azure.total_invocations row)
    /. float_of_int Azure.minutes_per_day
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f near 10" mean)
    true
    (mean > 8.0 && mean < 12.0)

let test_generate_row_zero_rate () =
  let rng = Rng.create ~seed:3 in
  let row = Synthetic.generate_row ~rng ~id:0 ~mean_rate_per_min:0.0 in
  Alcotest.(check int) "no invocations" 0 (Azure.total_invocations row)

let test_generate_deterministic () =
  let a = Synthetic.generate_rows ~seed:7 ~functions:5 in
  let b = Synthetic.generate_rows ~seed:7 ~functions:5 in
  List.iter2
    (fun ra rb ->
      Alcotest.(check (array int)) "same counts" ra.Azure.counts rb.Azure.counts)
    a b

(* ------------------------------------------------------------------ *)
(* Arrivals                                                            *)
(* ------------------------------------------------------------------ *)

let test_of_row_counts_and_order () =
  let counts = flat_counts 0 in
  counts.(3) <- 5;
  counts.(100) <- 2;
  let row = sample_row ~counts () in
  let rng = Rng.create ~seed:4 in
  let arrivals = Arrivals.of_row ~rng row in
  Alcotest.(check int) "7 arrivals" 7 (List.length arrivals);
  let ns = List.map Time.span_to_ns arrivals in
  Alcotest.(check (list int)) "sorted" (List.sort Int.compare ns) ns;
  List.iteri
    (fun i v ->
      let minute = v / 60_000_000_000 in
      Alcotest.(check bool)
        (Printf.sprintf "arrival %d in declared minute" i)
        true
        (minute = 3 || minute = 100))
    ns

let test_chunk_window () =
  let counts = flat_counts 1 in
  let row = sample_row ~counts () in
  let rng = Rng.create ~seed:5 in
  let duration = Time.span_s 30.0 in
  let arrivals = Arrivals.chunk ~rng row ~start_minute:720 ~duration in
  List.iter
    (fun a ->
      Alcotest.(check bool) "inside window" true
        (Time.span_to_ns a >= 0 && Time.span_to_ns a < Time.span_to_ns duration))
    arrivals;
  (* one invocation per minute, 30s window -> 0 or 1 arrivals *)
  Alcotest.(check bool) "at most 1" true (List.length arrivals <= 1)

let test_chunk_rejects_out_of_day () =
  let row = sample_row () in
  let rng = Rng.create ~seed:6 in
  Alcotest.check_raises "window outside"
    (Invalid_argument "Arrivals.chunk: window outside the day") (fun () ->
      ignore
        (Arrivals.chunk ~rng row ~start_minute:1439 ~duration:(Time.span_s 120.0)))

let test_poisson_process_rate () =
  let rng = Rng.create ~seed:7 in
  let arrivals =
    Arrivals.poisson_process ~rng ~rate_per_s:100.0 ~duration:(Time.span_s 50.0)
  in
  let n = List.length arrivals in
  Alcotest.(check bool)
    (Printf.sprintf "%d arrivals near 5000" n)
    true
    (n > 4500 && n < 5500)

let test_periodic () =
  let arrivals =
    Arrivals.periodic ~every:(Time.span_ms 100.0) ~duration:(Time.span_s 1.0)
  in
  Alcotest.(check int) "10 ticks" 10 (List.length arrivals);
  Alcotest.(check int) "first at 0" 0 (Time.span_to_ns (List.hd arrivals));
  Alcotest.check_raises "zero period"
    (Invalid_argument "Arrivals.periodic: zero period") (fun () ->
      ignore (Arrivals.periodic ~every:Time.span_zero ~duration:(Time.span_s 1.0)))

(* ------------------------------------------------------------------ *)
(* Durations schema                                                    *)
(* ------------------------------------------------------------------ *)

module Durations = Horse_trace.Durations

let sample_duration_row () =
  Durations.make_row ~owner:"o" ~app:"a" ~func:"f" ~average_ms:120.0 ~count:500
    ~minimum_ms:5.0 ~maximum_ms:9000.0
    ~percentiles_ms:
      [ (0, 5.0); (1, 10.0); (25, 40.0); (50, 90.0); (75, 200.0);
        (99, 2500.0); (100, 9000.0) ]

let test_durations_validation () =
  Alcotest.check_raises "non-monotone values"
    (Invalid_argument "Durations.make_row: percentile values not monotone")
    (fun () ->
      ignore
        (Durations.make_row ~owner:"o" ~app:"a" ~func:"f" ~average_ms:1.0
           ~count:1 ~minimum_ms:1.0 ~maximum_ms:10.0
           ~percentiles_ms:[ (0, 5.0); (50, 3.0) ]));
  Alcotest.check_raises "min > max"
    (Invalid_argument "Durations.make_row: minimum exceeds maximum") (fun () ->
      ignore
        (Durations.make_row ~owner:"o" ~app:"a" ~func:"f" ~average_ms:1.0
           ~count:1 ~minimum_ms:10.0 ~maximum_ms:1.0 ~percentiles_ms:[]))

let test_durations_roundtrip () =
  let row = sample_duration_row () in
  let parsed = Durations.parse_line (Durations.to_line row) in
  Alcotest.(check string) "func" row.Durations.func parsed.Durations.func;
  Alcotest.(check int) "count" row.Durations.count parsed.Durations.count;
  Alcotest.(check (float 1e-3)) "p99" 2500.0
    (List.assoc 99 parsed.Durations.percentiles_ms);
  Alcotest.(check int) "header columns"
    (List.length (String.split_on_char ',' Durations.header_line))
    (List.length (String.split_on_char ',' (Durations.to_line row)))

let test_durations_generate () =
  let rng = Rng.create ~seed:13 in
  let row = Durations.generate ~rng ~id:3 ~median_ms:100.0 ~spread:1.0 in
  Alcotest.(check (float 1.0)) "median honoured" 100.0
    (List.assoc 50 row.Durations.percentiles_ms);
  Alcotest.(check bool) "tail above median" true
    (List.assoc 99 row.Durations.percentiles_ms > 500.0);
  (* generated rows always re-parse *)
  let parsed = Durations.parse_line (Durations.to_line row) in
  Alcotest.(check string) "roundtrips" row.Durations.func parsed.Durations.func

let test_durations_sampler () =
  let row = sample_duration_row () in
  let rng = Rng.create ~seed:14 in
  let n = 5_000 in
  let draws =
    List.init n (fun _ -> Time.span_to_ms (Durations.sampler row rng))
  in
  List.iter
    (fun ms ->
      Alcotest.(check bool) "within envelope" true (ms >= 5.0 && ms <= 9000.0))
    draws;
  let sorted = List.sort Float.compare draws in
  let median = List.nth sorted (n / 2) in
  (* the p50 of the samples must sit near the row's p50 *)
  Alcotest.(check bool)
    (Printf.sprintf "median %.1f near 90" median)
    true
    (median > 70.0 && median < 110.0)

let test_long_running_fraction () =
  let row = sample_duration_row () in
  (* 1s crossed between p75 (200ms) and p99 (2500ms) *)
  let fraction = Durations.long_running_fraction row in
  Alcotest.(check bool)
    (Printf.sprintf "fraction %.3f in (0.01, 0.25)" fraction)
    true
    (fraction > 0.01 && fraction < 0.25);
  let fast =
    Durations.make_row ~owner:"o" ~app:"a" ~func:"f" ~average_ms:1.0 ~count:1
      ~minimum_ms:0.5 ~maximum_ms:2.0
      ~percentiles_ms:[ (0, 0.5); (50, 1.0); (100, 2.0) ]
  in
  Alcotest.(check (float 1e-9)) "all fast" 0.0
    (Durations.long_running_fraction fast)

(* ------------------------------------------------------------------ *)
(* Batch: flat trigger traces                                          *)
(* ------------------------------------------------------------------ *)

module Batch = Horse_trace.Batch

let batch_seeds = [ 1; 42; 1337 ]

(* [bursty] hands its output straight to the windowed batch cursor,
   which requires non-decreasing arrival times — the clumped offsets
   must come out time-sorted for every seed, with the declared row
   count and every arrival inside the horizon. *)
let test_bursty_sorted () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 5_000 in
      let duration = Time.span_ms 50.0 in
      let batch = Batch.bursty ~rng ~n ~duration ~fn_id:3 ~payload:7 () in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: row count" seed)
        n (Batch.length batch);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: sorted" seed)
        true (Batch.sorted batch);
      let horizon = Time.span_to_ns duration in
      for k = 0 to n - 1 do
        if k > 0 && Batch.time_ns batch k < Batch.time_ns batch (k - 1) then
          Alcotest.failf "seed %d: row %d out of order" seed k;
        let t = Batch.time_ns batch k in
        if t < 0 || t >= horizon then
          Alcotest.failf "seed %d: row %d outside horizon (%d)" seed k t
      done)
    batch_seeds

(* [stamp_payloads] rewrites the payload column in place by row index
   and must leave the time and fn-id columns — and hence row order —
   untouched. *)
let test_stamp_payloads_preserves_order () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2_000 in
      let batch =
        Batch.bursty ~rng ~n ~duration:(Time.span_ms 20.0) ~fn_id:1
          ~payload:(-1) ()
      in
      let times = Array.init n (Batch.time_ns batch) in
      let fns = Array.init n (Batch.fn_id batch) in
      Batch.stamp_payloads batch (fun i -> (i * 31) + seed);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: length unchanged" seed)
        n (Batch.length batch);
      for k = 0 to n - 1 do
        if Batch.time_ns batch k <> times.(k) then
          Alcotest.failf "seed %d: row %d time moved" seed k;
        if Batch.fn_id batch k <> fns.(k) then
          Alcotest.failf "seed %d: row %d fn-id moved" seed k;
        if Batch.payload batch k <> (k * 31) + seed then
          Alcotest.failf "seed %d: row %d payload not stamped" seed k
      done;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: still sorted" seed)
        true (Batch.sorted batch))
    batch_seeds

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse_line (to_line row) == row" ~count:100
    QCheck2.Gen.(array_repeat 1440 (0 -- 50))
    (fun counts ->
      let row = sample_row ~counts () in
      let parsed = Azure.parse_line (Azure.to_line row) in
      parsed.Azure.counts = row.Azure.counts
      && parsed.Azure.owner = row.Azure.owner)

let prop_of_row_mass_conservation =
  QCheck2.Test.make ~name:"of_row yields exactly the declared invocations"
    ~count:100
    QCheck2.Gen.(pair (array_repeat 1440 (0 -- 3)) (0 -- 1000))
    (fun (counts, seed) ->
      let row = sample_row ~counts () in
      let rng = Rng.create ~seed in
      List.length (Arrivals.of_row ~rng row) = Azure.total_invocations row)

let () =
  Alcotest.run "horse_trace"
    [
      ( "schema",
        [
          Alcotest.test_case "validation" `Quick test_row_validation;
          Alcotest.test_case "line roundtrip" `Quick test_line_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "skips header" `Quick test_parse_string_skips_header;
          Alcotest.test_case "load file" `Quick test_load_file;
          Alcotest.test_case "trigger names" `Quick test_trigger_names;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "skewed popularity" `Quick test_generate_rows_shape;
          Alcotest.test_case "rate honoured" `Quick test_generate_row_rate;
          Alcotest.test_case "zero rate" `Quick test_generate_row_zero_rate;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "of_row" `Quick test_of_row_counts_and_order;
          Alcotest.test_case "chunk window" `Quick test_chunk_window;
          Alcotest.test_case "chunk bounds" `Quick test_chunk_rejects_out_of_day;
          Alcotest.test_case "poisson rate" `Quick test_poisson_process_rate;
          Alcotest.test_case "periodic" `Quick test_periodic;
        ] );
      ( "durations",
        [
          Alcotest.test_case "validation" `Quick test_durations_validation;
          Alcotest.test_case "roundtrip" `Quick test_durations_roundtrip;
          Alcotest.test_case "generate" `Quick test_durations_generate;
          Alcotest.test_case "sampler" `Quick test_durations_sampler;
          Alcotest.test_case "long-running fraction" `Quick
            test_long_running_fraction;
        ] );
      ( "batch",
        [
          Alcotest.test_case "bursty time-sorted" `Quick test_bursty_sorted;
          Alcotest.test_case "stamp_payloads preserves order" `Quick
            test_stamp_payloads_preserves_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_of_row_mass_conservation ] );
    ]
