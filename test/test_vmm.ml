(* Tests for horse_vmm: sandbox lifecycle, the four resume strategies,
   cost-model agreement, failure injection and the multi-sandbox
   consistency of the HORSE pause state. *)

module Sandbox = Horse_vmm.Sandbox
module Vmm = Horse_vmm.Vmm
module Scheduler = Horse_sched.Scheduler
module Runqueue = Horse_sched.Runqueue
module Vcpu = Horse_sched.Vcpu
module Topology = Horse_cpu.Topology
module Cost = Horse_cpu.Cost_model
module Metrics = Horse_sim.Metrics
module Time = Horse_sim.Time_ns
module Al = Horse_psm.Arena_list

let topology = Topology.create ~sockets:1 ~cores_per_socket:8 ()

let fresh ?(ull_count = 1) ?(jitter = 0.0) () =
  let scheduler = Scheduler.create ~ull_count ~topology () in
  let metrics = Metrics.create () in
  let vmm = Vmm.create ~jitter ~scheduler ~metrics () in
  (vmm, scheduler, metrics)

let mk_sandbox ?(id = 1) ?(vcpus = 2) ?(ull = true) () =
  Sandbox.create ~id ~vcpus ~memory_mb:512 ~ull ()

let ns_of = Time.span_to_ns

(* ------------------------------------------------------------------ *)
(* Sandbox entity                                                      *)
(* ------------------------------------------------------------------ *)

let test_sandbox_create () =
  let sb = mk_sandbox ~vcpus:4 () in
  Alcotest.(check int) "vcpus" 4 (Sandbox.vcpu_count sb);
  Alcotest.(check bool) "created" true (Sandbox.state sb = Sandbox.Created);
  Alcotest.(check bool) "ull" true (Sandbox.is_ull sb);
  Alcotest.(check int) "no psm memory yet" 0
    (Sandbox.horse_memory_footprint_bytes sb)

let test_sandbox_validation () =
  Alcotest.check_raises "zero vcpus"
    (Invalid_argument "Sandbox.create: vcpus must be positive") (fun () ->
      ignore (Sandbox.create ~id:1 ~vcpus:0 ~memory_mb:512 ()));
  Alcotest.check_raises "zero memory"
    (Invalid_argument "Sandbox.create: memory must be positive") (fun () ->
      ignore (Sandbox.create ~id:1 ~vcpus:1 ~memory_mb:0 ()))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let test_boot_places_vcpus () =
  let vmm, scheduler, metrics = fresh () in
  let sb = mk_sandbox ~vcpus:3 () in
  let span = Vmm.boot vmm sb in
  Alcotest.(check bool) "running" true (Sandbox.state sb = Sandbox.Running);
  Alcotest.(check int) "3 queued" 3 (Scheduler.total_queued scheduler);
  Alcotest.(check bool) "~1.5s" true
    (ns_of span > 1_400_000_000 && ns_of span < 1_600_000_000);
  Alcotest.(check int) "metric" 1 (Metrics.counter metrics "vmm.boots")

let test_boot_twice_rejected () =
  let vmm, _, _ = fresh () in
  let sb = mk_sandbox () in
  ignore (Vmm.boot vmm sb);
  Alcotest.check_raises "double boot"
    (Vmm.Invalid_state "boot: sandbox already started") (fun () ->
      ignore (Vmm.boot vmm sb))

let test_restore_cost () =
  let vmm, _, _ = fresh () in
  let sb = mk_sandbox () in
  let span = Vmm.restore vmm sb in
  Alcotest.(check bool) "~1.3ms" true
    (ns_of span > 1_200_000 && ns_of span < 1_400_000);
  Alcotest.(check bool) "running" true (Sandbox.state sb = Sandbox.Running)

let test_pause_requires_running () =
  let vmm, _, _ = fresh () in
  let sb = mk_sandbox () in
  Alcotest.check_raises "not running"
    (Vmm.Invalid_state "pause: sandbox not running") (fun () ->
      ignore (Vmm.pause vmm ~strategy:Sandbox.Vanilla sb))

let test_resume_requires_paused () =
  let vmm, _, _ = fresh () in
  let sb = mk_sandbox () in
  ignore (Vmm.boot vmm sb);
  Alcotest.check_raises "not paused"
    (Vmm.Invalid_state "resume: sandbox not paused") (fun () ->
      ignore (Vmm.resume vmm sb))

let test_double_pause_rejected () =
  let vmm, _, _ = fresh () in
  let sb = mk_sandbox () in
  ignore (Vmm.boot vmm sb);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb);
  Alcotest.check_raises "double pause"
    (Vmm.Invalid_state "pause: sandbox not running") (fun () ->
      ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb))

let test_pause_empties_queues () =
  let vmm, scheduler, _ = fresh () in
  let sb = mk_sandbox ~vcpus:4 () in
  ignore (Vmm.boot vmm sb);
  Alcotest.(check int) "queued" 4 (Scheduler.total_queued scheduler);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Vanilla sb);
  Alcotest.(check int) "drained" 0 (Scheduler.total_queued scheduler);
  Alcotest.(check bool) "paused vcpus" true
    (Array.for_all (fun v -> Vcpu.state v = Vcpu.Paused) (Sandbox.vcpus sb))

let roundtrip ?(topology = topology) strategy vcpus =
  let scheduler = Scheduler.create ~ull_count:1 ~topology () in
  let vmm = Vmm.create ~jitter:0.0 ~scheduler ~metrics:(Metrics.create ()) () in
  let sb = mk_sandbox ~vcpus () in
  ignore (Vmm.boot vmm sb);
  ignore (Vmm.pause vmm ~strategy sb);
  let result = Vmm.resume vmm sb in
  (vmm, scheduler, sb, result)

(* Calibration comparisons assume the paper's 72-CPU testbed, where a
   36-vCPU vanilla resume finds a near-empty queue per vCPU. *)
let roundtrip_r650 strategy vcpus =
  roundtrip ~topology:Topology.r650 strategy vcpus

let test_resume_restores_vcpus () =
  List.iter
    (fun strategy ->
      let _, scheduler, sb, _ = roundtrip strategy 4 in
      Alcotest.(check bool)
        (Sandbox.strategy_name strategy ^ " running")
        true
        (Sandbox.state sb = Sandbox.Running);
      Alcotest.(check int)
        (Sandbox.strategy_name strategy ^ " re-queued")
        4
        (Scheduler.total_queued scheduler))
    [ Sandbox.Vanilla; Sandbox.Ppsm; Sandbox.Coal; Sandbox.Horse ]

let test_horse_resume_lands_on_ull_queue () =
  let _, scheduler, _sb, result = roundtrip Sandbox.Horse 3 in
  let ull = List.hd (Scheduler.ull_runqueues scheduler) in
  Alcotest.(check int) "on ull queue" 3 (Runqueue.length ull);
  Alcotest.(check bool) "merge threads used" true (result.Vmm.merge_threads >= 1);
  Alcotest.(check int) "one preempted cpu per thread"
    result.Vmm.merge_threads
    (List.length result.Vmm.preempted_cpus)

let test_vanilla_resume_spreads_on_normal_queues () =
  let _, scheduler, _, result = roundtrip Sandbox.Vanilla 4 in
  let ull = List.hd (Scheduler.ull_runqueues scheduler) in
  Alcotest.(check int) "ull untouched" 0 (Runqueue.length ull);
  Alcotest.(check int) "no merge threads" 0 result.Vmm.merge_threads

(* ------------------------------------------------------------------ *)
(* Resume timing: simulator vs cost-model closed forms                 *)
(* ------------------------------------------------------------------ *)

let test_vanilla_resume_matches_estimate () =
  List.iter
    (fun vcpus ->
      let vmm, _, _, result = roundtrip_r650 Sandbox.Vanilla vcpus in
      let expected = Cost.vanilla_resume_estimate_ns (Vmm.cost vmm) ~vcpus in
      let measured = float_of_int (ns_of result.Vmm.total) in
      Alcotest.(check bool)
        (Printf.sprintf "within 5%% at %d vcpus (%f vs %f)" vcpus measured
           expected)
        true
        (Float.abs (measured -. expected) /. expected < 0.05))
    [ 1; 8; 36 ]

let test_horse_resume_matches_estimate () =
  List.iter
    (fun vcpus ->
      let vmm, _, _, result = roundtrip_r650 Sandbox.Horse vcpus in
      let expected = Cost.horse_resume_estimate_ns (Vmm.cost vmm) in
      let measured = float_of_int (ns_of result.Vmm.total) in
      Alcotest.(check bool)
        (Printf.sprintf "constant ~150ns at %d vcpus" vcpus)
        true
        (Float.abs (measured -. expected) /. expected < 0.05))
    [ 1; 8; 36 ]

let test_breakdown_consistency () =
  let _, _, _, result = roundtrip Sandbox.Vanilla 8 in
  Alcotest.(check int) "breakdown sums to total"
    (int_of_float (Float.round (Vmm.breakdown_total_ns result.Vmm.breakdown)))
    (ns_of result.Vmm.total)

let test_steps45_dominate_vanilla () =
  let _, _, _, result = roundtrip_r650 Sandbox.Vanilla 36 in
  let b = result.Vmm.breakdown in
  let share =
    (b.Vmm.merge_ns +. b.Vmm.load_ns) /. Vmm.breakdown_total_ns b
  in
  Alcotest.(check bool) "steps 4+5 ~93%" true (share > 0.92 && share < 0.945)

let test_strategy_ordering_at_36 () =
  let total s =
    let _, _, _, r = roundtrip_r650 s 36 in
    ns_of r.Vmm.total
  in
  let vanil = total Sandbox.Vanilla
  and ppsm = total Sandbox.Ppsm
  and coal = total Sandbox.Coal
  and horse = total Sandbox.Horse in
  Alcotest.(check bool) "horse < ppsm" true (horse < ppsm);
  Alcotest.(check bool) "ppsm < coal" true (ppsm < coal);
  Alcotest.(check bool) "coal < vanil" true (coal < vanil);
  (* the paper's improvement bands at 36 vCPUs *)
  let impr x = 1.0 -. (float_of_int x /. float_of_int vanil) in
  Alcotest.(check bool) "coal saves 16-22%" true
    (impr coal > 0.16 && impr coal < 0.22);
  Alcotest.(check bool) "ppsm saves 55-70%" true
    (impr ppsm > 0.55 && impr ppsm < 0.70);
  Alcotest.(check bool) "horse saves >=84%" true (impr horse >= 0.84)

let test_jitter_bounds () =
  let scheduler = Scheduler.create ~topology () in
  let vmm =
    Vmm.create ~jitter:0.02 ~scheduler ~metrics:(Metrics.create ()) ()
  in
  let sb = mk_sandbox () in
  ignore (Vmm.boot vmm sb);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb);
  let r = Vmm.resume vmm sb in
  let exact = Vmm.breakdown_total_ns r.Vmm.breakdown in
  let measured = float_of_int (ns_of r.Vmm.total) in
  Alcotest.(check bool) "within 2%" true
    (Float.abs (measured -. exact) /. exact <= 0.021)

(* ------------------------------------------------------------------ *)
(* Load semantics across strategies                                    *)
(* ------------------------------------------------------------------ *)

let test_coalesced_load_equals_vanilla_effect () =
  (* After resume, the global lock-protected load must be the same
     whether the n updates were applied one by one or coalesced. *)
  let load_after strategy =
    let _, scheduler, _, _ = roundtrip strategy 12 in
    Horse_sched.Load_tracking.load (Scheduler.global_load scheduler)
  in
  let vanil = load_after Sandbox.Vanilla in
  let coal = load_after Sandbox.Coal in
  let horse = load_after Sandbox.Horse in
  let ppsm = load_after Sandbox.Ppsm in
  Alcotest.(check (float 1e-6)) "coal == vanilla" vanil coal;
  Alcotest.(check (float 1e-6)) "horse == vanilla" vanil horse;
  Alcotest.(check (float 1e-6)) "ppsm == vanilla" vanil ppsm;
  (* and the lock-write counts differ as §4.2 describes *)
  let writes strategy =
    let _, scheduler, _, _ = roundtrip strategy 12 in
    Horse_sched.Load_tracking.updates (Scheduler.global_load scheduler)
  in
  Alcotest.(check int) "vanilla writes n times" 12 (writes Sandbox.Vanilla);
  Alcotest.(check int) "horse writes once" 1 (writes Sandbox.Horse)

(* ------------------------------------------------------------------ *)
(* HORSE pause state maintenance across sandboxes                      *)
(* ------------------------------------------------------------------ *)

let test_two_paused_sandboxes_share_queue () =
  let vmm, scheduler, metrics = fresh () in
  let sb1 = mk_sandbox ~id:1 ~vcpus:2 () in
  let sb2 = mk_sandbox ~id:2 ~vcpus:3 () in
  ignore (Vmm.boot vmm sb1);
  ignore (Vmm.boot vmm sb2);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb1);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb2);
  (* resuming sb1 splices into the ull queue; sb2's plan must follow *)
  ignore (Vmm.resume vmm sb1);
  Alcotest.(check bool) "sb2 saw maintenance events" true
    (Metrics.counter metrics "psm.maintenance_events" >= 2);
  let r2 = Vmm.resume vmm sb2 in
  let ull = List.hd (Scheduler.ull_runqueues scheduler) in
  Alcotest.(check int) "all 5 vcpus on ull queue" 5 (Runqueue.length ull);
  Alcotest.(check bool) "queue still sorted" true
    (Al.is_sorted (Runqueue.queue ull));
  Alcotest.(check bool) "sb2 resume still O(1)" true
    (ns_of r2.Vmm.total < 200)

let test_pause_resume_cycles_stay_consistent () =
  let vmm, scheduler, _ = fresh () in
  let sandboxes =
    List.init 4 (fun i -> mk_sandbox ~id:i ~vcpus:(1 + (i mod 3)) ())
  in
  List.iter (fun sb -> ignore (Vmm.boot vmm sb)) sandboxes;
  List.iter
    (fun sb -> ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb))
    sandboxes;
  (* interleave resumes and pauses several times *)
  for _ = 1 to 3 do
    List.iter (fun sb -> ignore (Vmm.resume vmm sb)) sandboxes;
    List.iter
      (fun sb -> ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb))
      sandboxes
  done;
  List.iter (fun sb -> ignore (Vmm.resume vmm sb)) sandboxes;
  let ull = List.hd (Scheduler.ull_runqueues scheduler) in
  Alcotest.(check int) "every vcpu back"
    (List.fold_left (fun acc sb -> acc + Sandbox.vcpu_count sb) 0 sandboxes)
    (Runqueue.length ull);
  Alcotest.(check bool) "sorted" true (Al.is_sorted (Runqueue.queue ull))

let test_memory_footprint_while_paused () =
  let vmm, _, _ = fresh () in
  let sb = mk_sandbox ~vcpus:36 () in
  ignore (Vmm.boot vmm sb);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb);
  let bytes = Sandbox.horse_memory_footprint_bytes sb in
  Alcotest.(check bool) "positive, sub-MB" true (bytes > 0 && bytes < 1_000_000);
  ignore (Vmm.resume vmm sb);
  Alcotest.(check int) "released after resume" 0
    (Sandbox.horse_memory_footprint_bytes sb)

let test_stop_releases_everything () =
  let vmm, scheduler, _ = fresh () in
  let sb = mk_sandbox ~vcpus:2 () in
  ignore (Vmm.boot vmm sb);
  ignore (Vmm.pause vmm ~strategy:Sandbox.Horse sb);
  let ull = List.hd (Scheduler.ull_runqueues scheduler) in
  Alcotest.(check int) "subscribed" 1 (Runqueue.subscriber_count ull);
  Vmm.stop vmm sb;
  Alcotest.(check int) "unsubscribed" 0 (Runqueue.subscriber_count ull);
  Alcotest.(check int) "detached" 0 (Scheduler.attached_paused scheduler ull);
  Alcotest.(check bool) "stopped" true (Sandbox.state sb = Sandbox.Stopped)

let test_dispatch_overhead () =
  let vmm, _, _ = fresh () in
  Alcotest.(check int) "horse fast path skips dispatch" 0
    (ns_of (Vmm.dispatch_overhead vmm ~strategy:Sandbox.Horse));
  Alcotest.(check bool) "vanilla pays ~540ns" true
    (ns_of (Vmm.dispatch_overhead vmm ~strategy:Sandbox.Vanilla) > 500)

let test_maintenance_cost () =
  let vmm, _, _ = fresh () in
  Alcotest.(check int) "zero" 0 (ns_of (Vmm.maintenance_cost vmm ~events:0));
  Alcotest.(check bool) "scales" true
    (ns_of (Vmm.maintenance_cost vmm ~events:100) > 1000)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore substrate                                        *)
(* ------------------------------------------------------------------ *)

module Snapshot = Horse_vmm.Snapshot

let test_memory_model () =
  let m = Snapshot.Memory.create ~size_mb:1 in
  Alcotest.(check int) "256 pages" 256 (Snapshot.Memory.page_count m);
  Alcotest.(check int) "zeroed" 0 (Snapshot.Memory.read m ~page:0);
  Snapshot.Memory.write m ~page:3 ~value:77;
  Alcotest.(check int) "written" 77 (Snapshot.Memory.read m ~page:3);
  Alcotest.(check int) "dirty" 1 (Snapshot.Memory.dirty_count m);
  Snapshot.Memory.clear_dirty m;
  Alcotest.(check int) "cleared" 0 (Snapshot.Memory.dirty_count m);
  Alcotest.(check (list int)) "working set survives" [ 3 ]
    (Snapshot.Memory.touched_pages m);
  Alcotest.check_raises "range"
    (Invalid_argument "Snapshot.Memory: page out of range") (fun () ->
      Snapshot.Memory.write m ~page:256 ~value:0)

let test_snapshot_roundtrip () =
  let m = Snapshot.Memory.create ~size_mb:1 in
  List.iter
    (fun (page, value) -> Snapshot.Memory.write m ~page ~value)
    [ (0, 11); (17, 22); (255, 33) ];
  let snap = Snapshot.capture m in
  Alcotest.(check int) "working set" 3 (Snapshot.working_set_size snap);
  (* mutate the original after the capture: the snapshot is frozen *)
  Snapshot.Memory.write m ~page:0 ~value:999;
  let report = Snapshot.restore snap ~mode:Snapshot.Eager in
  Alcotest.(check int) "page 0" 11
    (Snapshot.Memory.read report.Snapshot.memory ~page:0);
  Alcotest.(check int) "page 17" 22
    (Snapshot.Memory.read report.Snapshot.memory ~page:17);
  Alcotest.(check int) "page 255" 33
    (Snapshot.Memory.read report.Snapshot.memory ~page:255)

let test_restore_mode_latency_ordering () =
  let m = Snapshot.Memory.create ~size_mb:64 in
  for page = 0 to 255 do
    Snapshot.Memory.write m ~page ~value:page
  done;
  let snap = Snapshot.capture m in
  let latency mode =
    ns_of (Snapshot.restore snap ~mode).Snapshot.restore_latency
  in
  let eager = latency Snapshot.Eager in
  let lazy_ = latency Snapshot.Lazy in
  let ws = latency Snapshot.Working_set in
  Alcotest.(check bool) "lazy < ws < eager" true (lazy_ < ws && ws < eager);
  (* the calibration anchor: a ~256-page working set restores ~1.3ms *)
  Alcotest.(check bool)
    (Printf.sprintf "faasnap-style ~1.3ms (%d)" ws)
    true
    (ws > 1_200_000 && ws < 1_400_000)

let test_fault_costs () =
  let m = Snapshot.Memory.create ~size_mb:1 in
  for page = 0 to 63 do
    Snapshot.Memory.write m ~page ~value:1
  done;
  let snap = Snapshot.capture m in
  let eager = Snapshot.restore snap ~mode:Snapshot.Eager in
  Alcotest.(check int) "no faults after eager" 0
    (ns_of (Snapshot.fault_cost eager ~first_touches:100));
  let lazy_ = Snapshot.restore snap ~mode:Snapshot.Lazy in
  Alcotest.(check bool) "lazy pays per touch" true
    (ns_of (Snapshot.fault_cost lazy_ ~first_touches:100) > 0);
  let ws = Snapshot.restore snap ~mode:Snapshot.Working_set in
  Alcotest.(check bool) "ws pays less than lazy" true
    (ns_of (Snapshot.fault_cost ws ~first_touches:300)
    < ns_of (Snapshot.fault_cost lazy_ ~first_touches:300));
  Alcotest.check_raises "negative touches"
    (Invalid_argument "Snapshot.fault_cost: negative first_touches") (fun () ->
      ignore (Snapshot.fault_cost lazy_ ~first_touches:(-1)))

let prop_snapshot_restores_contents =
  QCheck2.Test.make
    ~name:"restore reproduces the captured contents under every mode"
    ~count:60
    QCheck2.Gen.(list_size (0 -- 40) (pair (0 -- 255) (0 -- 1000)))
    (fun writes ->
      let m = Snapshot.Memory.create ~size_mb:1 in
      List.iter (fun (page, value) -> Snapshot.Memory.write m ~page ~value) writes;
      let snap = Snapshot.capture m in
      List.for_all
        (fun mode ->
          let report = Snapshot.restore snap ~mode in
          List.for_all
            (fun page ->
              Snapshot.Memory.read report.Snapshot.memory ~page
              = Snapshot.Memory.read m ~page)
            (List.init 256 Fun.id))
        [ Snapshot.Eager; Snapshot.Lazy; Snapshot.Working_set ])

(* ------------------------------------------------------------------ *)
(* Boot phase model                                                    *)
(* ------------------------------------------------------------------ *)

module Boot = Horse_vmm.Boot

let test_boot_total_is_cold_anchor () =
  Alcotest.(check int) "1.5s" 1_500_000_000
    (ns_of (Boot.total Boot.firecracker_nodejs));
  Alcotest.(check int) "full boot == total"
    (ns_of (Boot.total Boot.firecracker_nodejs))
    (ns_of (Boot.cost Boot.firecracker_nodejs Boot.Full_boot))

let test_boot_resume_after_skips_prefix () =
  let profile = Boot.firecracker_nodejs in
  (* SnapStart-style: snapshot after code load; only warmup remains *)
  let after_code = Boot.cost profile (Boot.Resume_after Boot.Code_load) in
  Alcotest.(check int) "restore + warmup"
    (1_300_000 + 115_000_000)
    (ns_of after_code);
  (* snapshotting later phases always starts faster *)
  let costs =
    List.map
      (fun p -> ns_of (Boot.cost profile (Boot.Resume_after p)))
      Boot.all_phases
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone" true (decreasing costs);
  (* resume after the last phase = restore only *)
  Alcotest.(check int) "pure restore" 1_300_000
    (ns_of (Boot.cost profile (Boot.Resume_after Boot.Handler_warmup)))

let test_boot_skipped_phases () =
  Alcotest.(check int) "full boot skips none" 0
    (List.length (Boot.skipped_phases Boot.Full_boot));
  Alcotest.(check int) "after kernel skips 2"
    2
    (List.length (Boot.skipped_phases (Boot.Resume_after Boot.Kernel_boot)));
  Alcotest.(check (list string)) "names"
    [ "vmm-create"; "kernel-boot" ]
    (List.map Boot.phase_name
       (Boot.skipped_phases (Boot.Resume_after Boot.Kernel_boot)))

(* ------------------------------------------------------------------ *)
(* Property: random strategy sequences never corrupt the queues        *)
(* ------------------------------------------------------------------ *)

let prop_random_lifecycles =
  let strategy_gen =
    QCheck2.Gen.oneofl
      [ Sandbox.Vanilla; Sandbox.Ppsm; Sandbox.Coal; Sandbox.Horse ]
  in
  QCheck2.Test.make ~name:"random pause/resume sequences keep queues sorted"
    ~count:100
    QCheck2.Gen.(
      pair (list_size (1 -- 4) (1 -- 6)) (list_size (1 -- 12) strategy_gen))
    (fun (sizes, strategies) ->
      let vmm, scheduler, _ = fresh ~ull_count:2 () in
      let sandboxes =
        List.mapi
          (fun i vcpus -> mk_sandbox ~id:i ~vcpus ())
          sizes
      in
      List.iter (fun sb -> ignore (Vmm.boot vmm sb)) sandboxes;
      let arr = Array.of_list sandboxes in
      List.iteri
        (fun i strategy ->
          let sb = arr.(i mod Array.length arr) in
          match Sandbox.state sb with
          | Sandbox.Running -> ignore (Vmm.pause vmm ~strategy sb)
          | Sandbox.Paused -> ignore (Vmm.resume vmm sb)
          | Sandbox.Created | Sandbox.Booting | Sandbox.Stopped
          | Sandbox.Crashed -> ())
        strategies;
      Array.for_all
        (fun q -> Al.is_sorted (Runqueue.queue q))
        (Scheduler.runqueues scheduler))

let () =
  Alcotest.run "horse_vmm"
    [
      ( "sandbox",
        [
          Alcotest.test_case "create" `Quick test_sandbox_create;
          Alcotest.test_case "validation" `Quick test_sandbox_validation;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "boot places vcpus" `Quick test_boot_places_vcpus;
          Alcotest.test_case "boot twice rejected" `Quick test_boot_twice_rejected;
          Alcotest.test_case "restore cost" `Quick test_restore_cost;
          Alcotest.test_case "pause requires running" `Quick
            test_pause_requires_running;
          Alcotest.test_case "resume requires paused" `Quick
            test_resume_requires_paused;
          Alcotest.test_case "double pause rejected" `Quick
            test_double_pause_rejected;
          Alcotest.test_case "pause empties queues" `Quick
            test_pause_empties_queues;
          Alcotest.test_case "resume restores vcpus" `Quick
            test_resume_restores_vcpus;
          Alcotest.test_case "horse lands on ull queue" `Quick
            test_horse_resume_lands_on_ull_queue;
          Alcotest.test_case "vanilla spreads on normal queues" `Quick
            test_vanilla_resume_spreads_on_normal_queues;
          Alcotest.test_case "stop releases everything" `Quick
            test_stop_releases_everything;
        ] );
      ( "timing",
        [
          Alcotest.test_case "vanilla matches estimate" `Quick
            test_vanilla_resume_matches_estimate;
          Alcotest.test_case "horse matches estimate" `Quick
            test_horse_resume_matches_estimate;
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_consistency;
          Alcotest.test_case "steps 4+5 dominate" `Quick
            test_steps45_dominate_vanilla;
          Alcotest.test_case "strategy ordering at 36" `Quick
            test_strategy_ordering_at_36;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
          Alcotest.test_case "dispatch overhead" `Quick test_dispatch_overhead;
          Alcotest.test_case "maintenance cost" `Quick test_maintenance_cost;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "coalesced load == vanilla load" `Quick
            test_coalesced_load_equals_vanilla_effect;
          Alcotest.test_case "two paused sandboxes share queue" `Quick
            test_two_paused_sandboxes_share_queue;
          Alcotest.test_case "pause/resume cycles" `Quick
            test_pause_resume_cycles_stay_consistent;
          Alcotest.test_case "memory footprint" `Quick
            test_memory_footprint_while_paused;
        ] );
      ( "boot",
        [
          Alcotest.test_case "total is cold anchor" `Quick
            test_boot_total_is_cold_anchor;
          Alcotest.test_case "resume-after skips prefix" `Quick
            test_boot_resume_after_skips_prefix;
          Alcotest.test_case "skipped phases" `Quick test_boot_skipped_phases;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "memory model" `Quick test_memory_model;
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "mode latency ordering" `Quick
            test_restore_mode_latency_ordering;
          Alcotest.test_case "fault costs" `Quick test_fault_costs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_lifecycles; prop_snapshot_restores_contents ] );
    ]
