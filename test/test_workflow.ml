(* Workflow DAG tests: the fusion planner, the completion-driven
   stepper, and the oracle-equivalence suite — every generated DAG
   runs fused, unfused and node-at-a-time sequential, and all three
   must agree with the pure value oracle; record streams must be
   bit-identical across shard counts and value-identical across
   scheduling policies. *)

module Engine = Horse_sim.Engine
module Time = Horse_sim.Time_ns
module Stats = Horse_sim.Stats
module Topology = Horse_cpu.Topology
module Platform = Horse_faas.Platform
module Cluster = Horse_faas.Cluster
module Workflow = Horse_faas.Workflow
module Function_def = Horse_faas.Function_def
module Sandbox = Horse_vmm.Sandbox
module Category = Horse_workload.Category
module Batch = Horse_trace.Batch

let small_topology = Topology.create ~sockets:1 ~cores_per_socket:8 ()

(* A palette of uLL functions the generated DAGs draw from: node [i]
   runs palette function [i mod 4], so any two runs of the same shape
   invoke the same functions in the same places. *)
let palette =
  [|
    ("wfn-a", Category.Cat1);
    ("wfn-b", Category.Cat2);
    ("wfn-c", Category.Cat3);
    ("wfn-d", Category.Cat2);
  |]

let register_palette cluster =
  Array.iter
    (fun (name, cat) ->
      Cluster.register cluster
        (Function_def.create ~name ~vcpus:1 ~memory_mb:128
           ~exec:(Function_def.Ull cat) ()))
    palette

let fn_of_node i = fst palette.(i mod Array.length palette)

let graph_of_shape (shape : Harness.Dag.shape) =
  let b = Workflow.Builder.create () in
  for i = 0 to shape.Harness.Dag.nodes - 1 do
    let deps =
      List.filter_map
        (fun (s, d) -> if d = i then Some s else None)
        shape.Harness.Dag.edges
    in
    ignore
      (Workflow.Builder.add b ~name:(fn_of_node i)
         ~mode:(Platform.Warm Sandbox.Horse) ~deps)
  done;
  Workflow.Builder.build b

(* One direct-cluster run of [graph]: returns the manager after
   [instances] workflow starts have drained. *)
let run_direct ?(fuse = false) ?policy ?(servers = 2) ?(seed = 11)
    ?(instances = 3) graph =
  let engine = Engine.create ~seed () in
  let cluster =
    Cluster.create ~servers ?policy ~topology:small_topology ~seed ~engine ()
  in
  register_palette cluster;
  let wf = Workflow.create ~fuse ~cluster () in
  let id = Workflow.register wf ~name:"g" graph in
  Workflow.provision wf ~wf_id:id ~per_unit:8;
  for _ = 1 to instances do
    ignore (Workflow.start wf ~wf_id:id ())
  done;
  Workflow.run wf;
  wf

let run_sharded ?(fuse = false) ?policy ?(servers = 2) ?(shards = 1)
    ?(seed = 11) ?(instances = 3)
    ?(placement = Time.span_us 50.0) graph =
  let cluster =
    Cluster.create_sharded ~servers ?policy ~topology:small_topology ~seed
      ~placement ~shards ()
  in
  register_palette cluster;
  let wf = Workflow.create ~fuse ~cluster () in
  let id = Workflow.register wf ~name:"g" graph in
  Workflow.provision wf ~wf_id:id ~per_unit:8;
  for _ = 1 to instances do
    ignore (Workflow.start wf ~wf_id:id ())
  done;
  Workflow.run wf;
  wf

(* The full observable record stream, completion order. *)
let stream wf =
  List.init (Workflow.Records.count wf) (fun i ->
      ( Workflow.Records.instance wf i,
        Workflow.Records.node wf i,
        Workflow.Records.value wf i,
        Workflow.Records.server wf i,
        Workflow.Records.triggered_ns wf i,
        Workflow.Records.init_ns wf i,
        Workflow.Records.exec_ns wf i,
        Workflow.Records.preemption_ns wf i,
        Workflow.Records.completed_ns wf i ))

(* (instance, node) -> value, order-independent. *)
let value_map wf =
  List.sort compare
    (List.init (Workflow.Records.count wf) (fun i ->
         ( Workflow.Records.instance wf i,
           Workflow.Records.node wf i,
           Workflow.Records.value wf i )))

let check_identity_rows wf =
  let bad = ref None in
  for i = 0 to Workflow.Records.count wf - 1 do
    let total =
      Workflow.Records.init_ns wf i
      + Workflow.Records.exec_ns wf i
      + Workflow.Records.preemption_ns wf i
    in
    let width =
      Workflow.Records.completed_ns wf i - Workflow.Records.triggered_ns wf i
    in
    if total <> width && !bad = None then
      bad :=
        Some
          (Printf.sprintf
             "row %d (node %d): completed-triggered = %d but init+exec+preempt \
              = %d"
             i
             (Workflow.Records.node wf i)
             width total)
  done;
  !bad

(* Node-at-a-time sequential execution: each node triggered alone on a
   fresh engine quiescent point, in topological (= index) order.  The
   per-node latency identity must hold for every record. *)
let run_sequential ?(seed = 11) graph =
  let engine = Engine.create ~seed () in
  let cluster =
    Cluster.create ~servers:1 ~topology:small_topology ~seed ~engine ()
  in
  register_palette cluster;
  Array.iter
    (fun (name, _) ->
      Cluster.provision cluster ~name ~total:4 ~strategy:Sandbox.Horse)
    palette;
  let rows = ref [] in
  for i = 0 to Workflow.node_count graph - 1 do
    (match
       Cluster.trigger cluster
         ~name:(Workflow.node_name graph i)
         ~mode:(Workflow.node_mode graph i)
         ~on_complete:(fun (_server, r) -> rows := (i, r) :: !rows)
         ()
     with
    | Cluster.Accepted _ | Cluster.Queued | Cluster.Forwarded _ -> ()
    | Cluster.Rejected _ -> Alcotest.fail "sequential trigger rejected");
    Cluster.run cluster
  done;
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* Oracle equivalence over generated DAGs                              *)
(* ------------------------------------------------------------------ *)

let check_against_oracle label wf graph instances =
  if Workflow.instances_completed wf <> instances then
    Some
      (Printf.sprintf "%s: %d of %d instances completed" label
         (Workflow.instances_completed wf)
         instances)
  else begin
    let n = Workflow.node_count graph in
    if Workflow.Records.count wf <> instances * n then
      Some
        (Printf.sprintf "%s: %d records for %d instances x %d nodes" label
           (Workflow.Records.count wf) instances n)
    else begin
      let bad = ref None in
      for inst = 0 to instances - 1 do
        (* the default instance seed is the instance id *)
        let expect = Workflow.oracle_values graph ~seed:inst in
        for v = 0 to n - 1 do
          let got = Workflow.value wf ~instance:inst ~node:v in
          if got <> expect.(v) && !bad = None then
            bad :=
              Some
                (Printf.sprintf "%s: instance %d node %d: value %d, oracle %d"
                   label inst v got expect.(v))
        done
      done;
      match !bad with Some _ as b -> b | None -> check_identity_rows wf
    end
  end

let test_oracle_equivalence () =
  let policies = Cluster.Policy.builtins () in
  Harness.Dag.check ~name:"workflow oracle equivalence" (fun shape ->
      let graph = graph_of_shape shape in
      let instances = 3 in
      (* the sequential oracle run: every node alone, identity held *)
      let seq = run_sequential graph in
      let seq_bad =
        List.find_map
          (fun (i, (r : Platform.record)) ->
            let width = Time.span_to_ns (Time.diff r.completed_at r.triggered_at) in
            let total = Time.span_to_ns (Platform.record_total r) in
            if width <> total then
              Some
                (Printf.sprintf
                   "sequential node %d: completed-triggered %d <> \
                    init+exec+preempt %d"
                   i width total)
            else None)
          seq
      in
      if List.length seq <> Workflow.node_count graph then
        Some "sequential run lost a node"
      else if seq_bad <> None then seq_bad
      else
        List.find_map
          (fun policy ->
            let unfused = run_direct ~policy ~instances graph in
            let fused = run_direct ~fuse:true ~policy ~instances graph in
            match
              check_against_oracle
                ("unfused/" ^ Cluster.Policy.name policy)
                unfused graph instances
            with
            | Some _ as w -> w
            | None -> (
              match
                check_against_oracle
                  ("fused/" ^ Cluster.Policy.name policy)
                  fused graph instances
              with
              | Some _ as w -> w
              | None ->
                if value_map unfused <> value_map fused then
                  Some
                    (Cluster.Policy.name policy
                    ^ ": fused and unfused value maps differ")
                else None))
          policies)

(* The full matrix gate: for each policy, the workflow record stream
   must be byte-identical across shard counts 1/2/4; across policies,
   the (instance, node, value) map must agree with the oracle. *)
let test_shard_policy_identity () =
  let graph =
    graph_of_shape
      {
        Harness.Dag.nodes = 6;
        edges = [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (4, 5) ];
      }
  in
  let instances = 4 in
  List.iter
    (fun fuse ->
      List.iter
        (fun policy ->
          let reference =
            stream (run_sharded ~fuse ~policy ~shards:1 ~instances graph)
          in
          List.iter
            (fun shards ->
              let s =
                stream (run_sharded ~fuse ~policy ~shards ~instances graph)
              in
              Alcotest.(check bool)
                (Printf.sprintf "stream identical at shards=%d (%s, fuse=%b)"
                   shards
                   (Cluster.Policy.name policy)
                   fuse)
                true (s = reference))
            [ 2; 4 ];
          let expect =
            List.sort compare
              (List.concat_map
                 (fun inst ->
                   let values = Workflow.oracle_values graph ~seed:inst in
                   List.init (Workflow.node_count graph) (fun v ->
                       (inst, v, values.(v))))
                 (List.init instances (fun i -> i)))
          in
          let wf = run_sharded ~fuse ~policy ~shards:1 ~instances graph in
          Alcotest.(check bool)
            (Printf.sprintf "values match oracle (%s, fuse=%b)"
               (Cluster.Policy.name policy)
               fuse)
            true
            (value_map wf = expect))
        (Cluster.Policy.builtins ()))
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Fusion planner                                                      *)
(* ------------------------------------------------------------------ *)

let nfv_cluster () =
  let engine = Engine.create ~seed:7 () in
  let cluster =
    Cluster.create ~servers:2 ~topology:small_topology ~seed:7 ~engine ()
  in
  List.iter (Cluster.register cluster) (Workflow.nfv_defs ());
  List.iter (Cluster.register cluster) (Workflow.thumbnail_defs ());
  cluster

let test_planner_fuses_nfv_chain () =
  let cluster = nfv_cluster () in
  let wf = Workflow.create ~fuse:true ~cluster () in
  let id = Workflow.register wf ~name:"nfv" (Workflow.nfv_chain ()) in
  Alcotest.(check int) "one fused unit" 1 (Workflow.unit_count wf ~wf_id:id);
  Alcotest.(check (list (list int)))
    "members" [ [ 0; 1; 2 ] ]
    (Workflow.unit_members wf ~wf_id:id);
  (* the fused function exists on the cluster, uLL, max of members *)
  let fused_id = Cluster.fn_id cluster ~name:"__fused:nfv:0" in
  let def =
    Function_def.Registry.def
      (Platform.registry (Cluster.server cluster 0))
      fused_id
  in
  Alcotest.(check bool) "fused is ull" true def.Function_def.ull;
  Alcotest.(check int) "fused vcpus" 1 def.Function_def.vcpus

let test_planner_leaves_non_ull_alone () =
  let cluster = nfv_cluster () in
  let wf = Workflow.create ~fuse:true ~cluster () in
  let id =
    Workflow.register wf ~name:"thumb" (Workflow.thumbnail_store ())
  in
  Alcotest.(check int) "no fusion" 2 (Workflow.unit_count wf ~wf_id:id);
  Alcotest.(check (list (list int)))
    "members" [ [ 0 ]; [ 1 ] ]
    (Workflow.unit_members wf ~wf_id:id)

let test_planner_mixed_chain () =
  (* ull, ull, thumbnail, ull: only the leading pair fuses *)
  let cluster = nfv_cluster () in
  let wf = Workflow.create ~fuse:true ~cluster () in
  let graph =
    Workflow.chain
      [
        ("nfv-firewall", Platform.Warm Sandbox.Horse);
        ("nfv-nat", Platform.Warm Sandbox.Horse);
        ("thumb-store", Platform.Warm Sandbox.Vanilla);
        ("nfv-filter", Platform.Warm Sandbox.Horse);
      ]
  in
  let id = Workflow.register wf ~name:"mixed" graph in
  Alcotest.(check (list (list int)))
    "fused prefix only"
    [ [ 0; 1 ]; [ 2 ]; [ 3 ] ]
    (Workflow.unit_members wf ~wf_id:id)

let test_planner_respects_branches () =
  (* a diamond of uLL nodes has no interior chain: nothing fuses *)
  let cluster = nfv_cluster () in
  let wf = Workflow.create ~fuse:true ~cluster () in
  let b = Workflow.Builder.create () in
  let mode = Platform.Warm Sandbox.Horse in
  let n0 = Workflow.Builder.add b ~name:"nfv-firewall" ~mode ~deps:[] in
  let n1 = Workflow.Builder.add b ~name:"nfv-nat" ~mode ~deps:[ n0 ] in
  let n2 = Workflow.Builder.add b ~name:"nfv-filter" ~mode ~deps:[ n0 ] in
  let _ = Workflow.Builder.add b ~name:"nfv-nat2" ~mode ~deps:[ n1; n2 ] in
  Cluster.register cluster
    (Function_def.create ~name:"nfv-nat2" ~vcpus:1 ~memory_mb:128
       ~exec:(Function_def.Ull Category.Cat2) ());
  let id = Workflow.register wf ~name:"diamond" (Workflow.Builder.build b) in
  Alcotest.(check int) "four units" 4 (Workflow.unit_count wf ~wf_id:id)

let test_fused_single_resume () =
  (* a fused NFV instance costs one warm trigger; unfused costs three *)
  let count_warm cluster =
    Horse_sim.Metrics.counter
      (Platform.metrics (Cluster.server cluster 0))
      "platform.triggers.warm-horse"
    + Horse_sim.Metrics.counter
        (Platform.metrics (Cluster.server cluster 1))
        "platform.triggers.warm-horse"
  in
  let run fuse =
    let cluster = nfv_cluster () in
    let wf = Workflow.create ~fuse ~cluster () in
    let id = Workflow.register wf ~name:"nfv" (Workflow.nfv_chain ()) in
    Workflow.provision wf ~wf_id:id ~per_unit:4;
    ignore (Workflow.start wf ~wf_id:id ());
    Workflow.run wf;
    Alcotest.(check int) "completed" 1 (Workflow.instances_completed wf);
    (count_warm cluster, wf)
  in
  let fused_triggers, fused = run true in
  let unfused_triggers, unfused = run false in
  Alcotest.(check int) "fused: one resume" 1 fused_triggers;
  Alcotest.(check int) "unfused: three resumes" 3 unfused_triggers;
  Alcotest.(check bool) "same values" true
    (value_map fused = value_map unfused)

(* ------------------------------------------------------------------ *)
(* Stepper timing                                                      *)
(* ------------------------------------------------------------------ *)

let test_chain_latency_identity_direct () =
  let graph = graph_of_shape { Harness.Dag.nodes = 4; edges = [ (0, 1); (1, 2); (2, 3) ] } in
  let wf = run_direct ~instances:1 graph in
  Alcotest.(check int) "records" 4 (Workflow.Records.count wf);
  (match check_identity_rows wf with
  | Some why -> Alcotest.fail why
  | None -> ());
  let row node =
    let rec find i =
      if Workflow.Records.node wf i = node then i else find (i + 1)
    in
    find 0
  in
  (* on a direct cluster the stepper dispatches a successor at the
     very instant its predecessor completes *)
  for v = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "node %d starts when %d completes" (v + 1) v)
      (Workflow.Records.completed_ns wf (row v))
      (Workflow.Records.triggered_ns wf (row (v + 1)))
  done;
  (* the end-to-end latency is the sum of per-node totals along the
     (only) path *)
  let total = ref 0 in
  for i = 0 to 3 do
    total :=
      !total
      + Workflow.Records.init_ns wf i
      + Workflow.Records.exec_ns wf i
      + Workflow.Records.preemption_ns wf i
  done;
  Alcotest.(check int) "critical path sums"
    (Workflow.Records.completed_ns wf (row 3)
    - Workflow.Records.triggered_ns wf (row 0))
    !total

let test_chain_hops_sharded () =
  (* on a sharded cluster every inter-node step pays exactly one
     completion notification plus one placement: 2 x placement *)
  let placement = Time.span_us 50.0 in
  let graph = graph_of_shape { Harness.Dag.nodes = 3; edges = [ (0, 1); (1, 2) ] } in
  let wf = run_sharded ~instances:1 ~placement graph in
  Alcotest.(check int) "records" 3 (Workflow.Records.count wf);
  let row node =
    let rec find i =
      if Workflow.Records.node wf i = node then i else find (i + 1)
    in
    find 0
  in
  let hop = 2 * Time.span_to_ns placement in
  for v = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "hop %d->%d is 2x placement" v (v + 1))
      (Workflow.Records.completed_ns wf (row v) + hop)
      (Workflow.Records.triggered_ns wf (row (v + 1)))
  done

(* ------------------------------------------------------------------ *)
(* Partitioned router plane                                            *)
(* ------------------------------------------------------------------ *)

(* Four 3-node warm uLL chains, rotated through the palette so the
   four root functions spread over the router hash. *)
let chain_names i =
  List.init 3 (fun k -> fst palette.((i + k) mod Array.length palette))

let router_graphs () =
  List.init 4 (fun i ->
      Workflow.chain
        (List.map
           (fun n -> (n, Platform.Warm Sandbox.Horse))
           (chain_names i)))

let multi_router_manager ?(fuse = false) ~shards () =
  let cluster =
    Cluster.create_sharded ~servers:4 ~topology:small_topology ~seed:11
      ~routers:2 ~shards ()
  in
  register_palette cluster;
  let wf = Workflow.create ~fuse ~cluster () in
  let ids =
    List.mapi
      (fun i g -> Workflow.register wf ~name:(Printf.sprintf "c%d" i) g)
      (router_graphs ())
  in
  List.iter (fun id -> Workflow.provision wf ~wf_id:id ~per_unit:4) ids;
  (cluster, wf, ids)

let test_multi_router_plane () =
  (* four chains over a 2-router plane: each is homed on its root's
     router, every dispatch stays in the home group (pinned triggers
     never spill), values match the pure oracle, and the stream is
     bit-identical across execution shards, fused and unfused *)
  let run ?fuse ~shards () =
    let cluster, wf, ids = multi_router_manager ?fuse ~shards () in
    let expect = Hashtbl.create 16 in
    List.iteri
      (fun k (id, g) ->
        let inst = Workflow.start wf ~wf_id:id ~seed:(1000 + k) () in
        Hashtbl.replace expect inst (id, g, 1000 + k))
      (List.concat_map
         (fun p -> [ p; p ])
         (List.combine ids (router_graphs ())));
    Workflow.run wf;
    (cluster, wf, ids, expect)
  in
  let cluster, wf, ids, expect = run ~shards:1 () in
  List.iteri
    (fun i id ->
      let root = List.hd (chain_names i) in
      Alcotest.(check int)
        (Printf.sprintf "c%d homed on its root's router" i)
        (Cluster.router_of_fn cluster
           ~fn_id:(Cluster.fn_id cluster ~name:root))
        (Workflow.wf_router wf ~wf_id:id))
    ids;
  let homes = List.map (fun id -> Workflow.wf_router wf ~wf_id:id) ids in
  Alcotest.(check bool) "both routers have homes" true
    (List.mem 0 homes && List.mem 1 homes);
  Alcotest.(check int) "all instances completed" 8
    (Workflow.instances_completed wf);
  Alcotest.(check int) "no failures" 0 (Workflow.instances_failed wf);
  for i = 0 to Workflow.Records.count wf - 1 do
    let inst = Workflow.Records.instance wf i in
    let id, _, _ = Hashtbl.find expect inst in
    Alcotest.(check int) "record produced in the home group"
      (Workflow.wf_router wf ~wf_id:id)
      (Cluster.router_of_server cluster (Workflow.Records.server wf i))
  done;
  Hashtbl.iter
    (fun inst (_, g, seed) ->
      let values = Workflow.oracle_values g ~seed in
      Array.iteri
        (fun v expect_v ->
          Alcotest.(check int)
            (Printf.sprintf "instance %d node %d" inst v)
            expect_v
            (Workflow.value wf ~instance:inst ~node:v))
        values)
    expect;
  (match check_identity_rows wf with
  | Some why -> Alcotest.fail why
  | None -> ());
  List.iter
    (fun fuse ->
      let _, reference, _, _ = run ~fuse ~shards:1 () in
      let reference = stream reference in
      List.iter
        (fun shards ->
          let _, w, _, _ = run ~fuse ~shards () in
          Alcotest.(check bool)
            (Printf.sprintf
               "routers=2 stream identical at shards=%d (fuse=%b)" shards fuse)
            true
            (stream w = reference))
        [ 2; 4 ])
    [ false; true ]

let test_multi_router_batch () =
  (* batch ingestion on a 2-router plane: rows are sliced per home
     router and armed on its engine; the run is deterministic and
     shard-invariant, and every row starts and completes *)
  let run shards =
    let _, wf, _ = multi_router_manager ~shards () in
    let b = Batch.create () in
    for k = 0 to 19 do
      Batch.add b
        ~at:(Time.span_us (float_of_int (k * 7)))
        ~fn_id:(k mod 4) ~payload:(500 + k)
    done;
    Workflow.schedule_batch ~window:4 wf b;
    Workflow.run wf;
    wf
  in
  let a = run 1 in
  Alcotest.(check int) "all started" 20 (Workflow.instances_started a);
  Alcotest.(check int) "all completed" 20 (Workflow.instances_completed a);
  (match check_identity_rows a with
  | Some why -> Alcotest.fail why
  | None -> ());
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Printf.sprintf "batch stream identical at shards=%d" shards)
        true
        (stream (run shards) = stream a))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Failure semantics                                                   *)
(* ------------------------------------------------------------------ *)

let test_rejected_unit_fails_instance () =
  let engine = Engine.create ~seed:3 () in
  let cluster =
    Cluster.create ~servers:1 ~topology:small_topology ~seed:3 ~engine ()
  in
  register_palette cluster;
  let wf = Workflow.create ~cluster () in
  let graph = graph_of_shape { Harness.Dag.nodes = 2; edges = [ (0, 1) ] } in
  let id = Workflow.register wf ~name:"g" graph in
  (* no pools provisioned: the first warm dispatch is rejected dry *)
  ignore (Workflow.start wf ~wf_id:id ());
  Workflow.run wf;
  Alcotest.(check int) "failed" 1 (Workflow.instances_failed wf);
  Alcotest.(check int) "not completed" 0 (Workflow.instances_completed wf);
  Alcotest.(check int) "no records" 0 (Workflow.Records.count wf)

(* ------------------------------------------------------------------ *)
(* Batch ingestion                                                     *)
(* ------------------------------------------------------------------ *)

let test_schedule_batch_deterministic () =
  let graph = graph_of_shape { Harness.Dag.nodes = 3; edges = [ (0, 1); (1, 2) ] } in
  let mk () =
    let engine = Engine.create ~seed:5 () in
    let cluster =
      Cluster.create ~servers:2 ~topology:small_topology ~seed:5 ~engine ()
    in
    register_palette cluster;
    let wf = Workflow.create ~cluster () in
    let id = Workflow.register wf ~name:"g" graph in
    Workflow.provision wf ~wf_id:id ~per_unit:8;
    (wf, id)
  in
  let batch wf_id =
    let b = Batch.create () in
    List.iter
      (fun us -> Batch.add b ~at:(Time.span_us us) ~fn_id:wf_id ~payload:0)
      [ 5.0; 1.0; 9.0; 1.0 ];
    Batch.sort b;
    (* stamp explicit instance seeds onto rows 0 and 2 *)
    Batch.stamp_payloads b (fun i -> if i mod 2 = 0 then 100 + i else 0);
    b
  in
  let run () =
    let wf, id = mk () in
    Workflow.schedule_batch ~window:2 wf (batch id);
    Workflow.run wf;
    wf
  in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "all started" 4 (Workflow.instances_started a);
  Alcotest.(check int) "all completed" 4 (Workflow.instances_completed a);
  Alcotest.(check bool) "two ingestions identical" true (stream a = stream b);
  (* stamped seeds are honoured: arrival row 0 became instance 0 with
     seed 100, row 2 instance 2 with seed 102; unstamped rows default
     to their instance id *)
  List.iteri
    (fun inst seed ->
      let expect = Workflow.oracle_values graph ~seed in
      for v = 0 to 2 do
        Alcotest.(check int)
          (Printf.sprintf "instance %d node %d" inst v)
          expect.(v)
          (Workflow.value a ~instance:inst ~node:v)
      done)
    [ 100; 1; 102; 3 ]

let test_schedule_batch_validates () =
  let engine = Engine.create ~seed:5 () in
  let cluster =
    Cluster.create ~servers:1 ~topology:small_topology ~seed:5 ~engine ()
  in
  register_palette cluster;
  let wf = Workflow.create ~cluster () in
  let b = Batch.create () in
  Batch.add b ~at:(Time.span_us 1.0) ~fn_id:9 ~payload:0;
  Alcotest.check_raises "unknown wf id"
    (Invalid_argument "Workflow.schedule_batch: unknown workflow id 9")
    (fun () -> Workflow.schedule_batch wf b)

(* ------------------------------------------------------------------ *)
(* Builder validation                                                  *)
(* ------------------------------------------------------------------ *)

let test_builder_validation () =
  let b = Workflow.Builder.create () in
  Alcotest.check_raises "forward dep"
    (Invalid_argument "Workflow.Builder.add: dep 0 of node 0") (fun () ->
      ignore
        (Workflow.Builder.add b ~name:"x" ~mode:Platform.Cold ~deps:[ 0 ]));
  Alcotest.check_raises "empty graph"
    (Invalid_argument "Workflow.Builder.build: empty graph") (fun () ->
      ignore (Workflow.Builder.build (Workflow.Builder.create ())))

let () =
  Alcotest.run "horse_workflow_dag"
    [
      ( "oracle",
        [
          Alcotest.test_case "generated DAGs: fused = unfused = sequential"
            `Quick test_oracle_equivalence;
          Alcotest.test_case "shards x policies identity" `Quick
            test_shard_policy_identity;
        ] );
      ( "planner",
        [
          Alcotest.test_case "NFV chain fuses to one unit" `Quick
            test_planner_fuses_nfv_chain;
          Alcotest.test_case "non-uLL chain untouched" `Quick
            test_planner_leaves_non_ull_alone;
          Alcotest.test_case "mixed chain fuses prefix only" `Quick
            test_planner_mixed_chain;
          Alcotest.test_case "diamond stays unfused" `Quick
            test_planner_respects_branches;
          Alcotest.test_case "fused segment resumes once" `Quick
            test_fused_single_resume;
        ] );
      ( "router plane",
        [
          Alcotest.test_case "chains homed per router, oracle + identity"
            `Quick test_multi_router_plane;
          Alcotest.test_case "batch ingestion sliced per router" `Quick
            test_multi_router_batch;
        ] );
      ( "stepper",
        [
          Alcotest.test_case "chain latency identity (direct)" `Quick
            test_chain_latency_identity_direct;
          Alcotest.test_case "chain hops are 2x placement (sharded)" `Quick
            test_chain_hops_sharded;
          Alcotest.test_case "rejected dispatch fails the instance" `Quick
            test_rejected_unit_fails_instance;
        ] );
      ( "ingestion",
        [
          Alcotest.test_case "batch starts: deterministic + stamped seeds"
            `Quick test_schedule_batch_deterministic;
          Alcotest.test_case "batch validates workflow ids" `Quick
            test_schedule_batch_validates;
        ] );
      ( "builder",
        [ Alcotest.test_case "validation" `Quick test_builder_validation ] );
    ]
