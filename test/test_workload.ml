(* Tests for horse_workload: the real uLL functions (firewall, NAT,
   array filter), the thumbnail generator and the CPU burner. *)

module Packet = Horse_workload.Packet
module Firewall = Horse_workload.Firewall
module Nat = Horse_workload.Nat
module Array_filter = Horse_workload.Array_filter
module Thumbnail = Horse_workload.Thumbnail
module Cpu_burn = Horse_workload.Cpu_burn
module Category = Horse_workload.Category
module Rng = Horse_sim.Rng
module Time = Horse_sim.Time_ns

(* ------------------------------------------------------------------ *)
(* Packet                                                              *)
(* ------------------------------------------------------------------ *)

let test_ip_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Packet.ip_to_string (Packet.ip_of_string s)))
    [ "0.0.0.0"; "10.0.0.1"; "192.168.255.254"; "255.255.255.255" ]

let test_ip_rejects_malformed () =
  List.iter
    (fun s ->
      match Packet.ip_of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Invalid_argument _ -> ())
    [ "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "-1.0.0.0"; "" ]

let test_make_header () =
  let h = Packet.make ~src:"10.0.0.1" ~dst:"10.0.0.2" ~dst_port:443 () in
  Alcotest.(check int) "dst port" 443 h.Packet.dst_port;
  Alcotest.(check bool) "tcp default" true (h.Packet.protocol = Packet.Tcp);
  Alcotest.check_raises "bad port" (Invalid_argument "Packet.make: port out of range")
    (fun () -> ignore (Packet.make ~src:"10.0.0.1" ~dst:"10.0.0.2" ~dst_port:70000 ()))

(* ------------------------------------------------------------------ *)
(* Firewall (Category 1)                                               *)
(* ------------------------------------------------------------------ *)

let fw =
  Firewall.create
    ~rules:
      [
        Firewall.rule_of_cidr "10.0.0.0/8" ();
        Firewall.rule_of_cidr "192.168.1.0/24" ~dst_port:443 ();
        Firewall.rule_of_cidr "172.16.0.0/12" ~protocol:Packet.Udp ();
      ]

let test_firewall_prefix_match () =
  let allow = Packet.make ~src:"10.200.3.4" ~dst:"1.1.1.1" () in
  let deny = Packet.make ~src:"11.0.0.1" ~dst:"1.1.1.1" () in
  Alcotest.(check bool) "inside /8" true (Firewall.evaluate fw allow = Firewall.Allow);
  Alcotest.(check bool) "outside /8" true (Firewall.evaluate fw deny = Firewall.Deny)

let test_firewall_port_condition () =
  let https = Packet.make ~src:"192.168.1.9" ~dst:"1.1.1.1" ~dst_port:443 () in
  let http = Packet.make ~src:"192.168.1.9" ~dst:"1.1.1.1" ~dst_port:80 () in
  Alcotest.(check bool) "matching port" true
    (Firewall.evaluate fw https = Firewall.Allow);
  Alcotest.(check bool) "wrong port" true
    (Firewall.evaluate fw http = Firewall.Deny)

let test_firewall_protocol_condition () =
  let udp =
    Packet.make ~src:"172.20.0.1" ~dst:"1.1.1.1" ~protocol:Packet.Udp ()
  in
  let tcp = Packet.make ~src:"172.20.0.1" ~dst:"1.1.1.1" () in
  Alcotest.(check bool) "udp allowed" true (Firewall.evaluate fw udp = Firewall.Allow);
  Alcotest.(check bool) "tcp denied" true (Firewall.evaluate fw tcp = Firewall.Deny)

let test_firewall_default_deny () =
  let empty = Firewall.create ~rules:[] in
  let any = Packet.make ~src:"1.2.3.4" ~dst:"5.6.7.8" () in
  Alcotest.(check bool) "empty list denies" true
    (Firewall.evaluate empty any = Firewall.Deny)

let test_firewall_zero_prefix_allows_all () =
  let open_fw = Firewall.create ~rules:[ Firewall.rule_of_cidr "0.0.0.0/0" () ] in
  let any = Packet.make ~src:"1.2.3.4" ~dst:"5.6.7.8" () in
  Alcotest.(check bool) "/0 matches everything" true
    (Firewall.evaluate open_fw any = Firewall.Allow)

let test_firewall_validation () =
  Alcotest.check_raises "bad prefix"
    (Invalid_argument "Firewall.create: prefix length outside [0, 32]")
    (fun () ->
      ignore
        (Firewall.create
           ~rules:[ { Firewall.src_prefix = 0; src_prefix_len = 33;
                      dst_port = None; protocol = None } ]))

(* ------------------------------------------------------------------ *)
(* NAT (Category 2)                                                    *)
(* ------------------------------------------------------------------ *)

let test_nat_translates () =
  let nat = Nat.create () in
  Nat.add_rule nat ~match_dst:"198.51.100.1" ~match_port:80
    ~rewrite_dst:"10.0.0.5" ~rewrite_port:8080;
  let h = Packet.make ~src:"1.2.3.4" ~dst:"198.51.100.1" ~dst_port:80 () in
  match Nat.translate nat h with
  | Some h' ->
    Alcotest.(check string) "rewritten ip" "10.0.0.5"
      (Packet.ip_to_string h'.Packet.dst_ip);
    Alcotest.(check int) "rewritten port" 8080 h'.Packet.dst_port;
    Alcotest.(check int) "src untouched" h.Packet.src_ip h'.Packet.src_ip
  | None -> Alcotest.fail "rule did not match"

let test_nat_no_match () =
  let nat = Nat.create () in
  Nat.add_rule nat ~match_dst:"198.51.100.1" ~match_port:80
    ~rewrite_dst:"10.0.0.5" ~rewrite_port:8080;
  let wrong_port = Packet.make ~src:"1.2.3.4" ~dst:"198.51.100.1" ~dst_port:81 () in
  Alcotest.(check bool) "no match" true (Nat.translate nat wrong_port = None)

let test_nat_rule_replacement () =
  let nat = Nat.create () in
  Nat.add_rule nat ~match_dst:"198.51.100.1" ~match_port:80
    ~rewrite_dst:"10.0.0.5" ~rewrite_port:8080;
  Nat.add_rule nat ~match_dst:"198.51.100.1" ~match_port:80
    ~rewrite_dst:"10.0.0.6" ~rewrite_port:9090;
  Alcotest.(check int) "still one rule" 1 (Nat.rule_count nat);
  let h = Packet.make ~src:"1.2.3.4" ~dst:"198.51.100.1" ~dst_port:80 () in
  match Nat.translate nat h with
  | Some h' -> Alcotest.(check int) "latest wins" 9090 h'.Packet.dst_port
  | None -> Alcotest.fail "rule did not match"

(* ------------------------------------------------------------------ *)
(* Array filter (Category 3)                                           *)
(* ------------------------------------------------------------------ *)

let test_filter_basic () =
  let arr = [| 5; 10; 3; 10; 1 |] in
  Alcotest.(check (list int)) "indexes" [ 1; 3 ]
    (Array_filter.indexes_above arr ~threshold:5);
  Alcotest.(check (list int)) "none" []
    (Array_filter.indexes_above arr ~threshold:100);
  Alcotest.(check (list int)) "all" [ 0; 1; 2; 3; 4 ]
    (Array_filter.indexes_above arr ~threshold:0)

let test_filter_into_matches_list () =
  let arr = Array_filter.sample_input ~seed:5 ~size:Array_filter.standard_size in
  let buf = Array.make (Array.length arr) 0 in
  let n = Array_filter.indexes_above_into arr ~threshold:5000 ~buf in
  let expected = Array_filter.indexes_above arr ~threshold:5000 in
  Alcotest.(check int) "same count" (List.length expected) n;
  Alcotest.(check (list int)) "same indexes" expected
    (Array.to_list (Array.sub buf 0 n))

let test_filter_buffer_guard () =
  Alcotest.check_raises "short buffer"
    (Invalid_argument "Array_filter.indexes_above_into: buffer too small")
    (fun () ->
      ignore
        (Array_filter.indexes_above_into [| 1; 2 |] ~threshold:0
           ~buf:(Array.make 1 0)))

let prop_filter_sound_and_complete =
  QCheck2.Test.make ~name:"every returned index exceeds the threshold, none missed"
    ~count:300
    QCheck2.Gen.(pair (array_size (0 -- 200) (0 -- 1000)) (0 -- 1000))
    (fun (arr, threshold) ->
      let idx = Array_filter.indexes_above arr ~threshold in
      List.for_all (fun i -> arr.(i) > threshold) idx
      && Array.for_all (fun x -> x <= threshold) (Array.of_list
           (List.filteri (fun i _ -> not (List.mem i idx)) (Array.to_list arr)))
      |> fun complete -> complete)

(* ------------------------------------------------------------------ *)
(* Thumbnail                                                           *)
(* ------------------------------------------------------------------ *)

let test_thumbnail_downscales () =
  let img = Thumbnail.make_test_image ~width:640 ~height:480 ~seed:1 in
  let thumb = Thumbnail.generate img ~max_dim:128 in
  Alcotest.(check int) "width" 128 thumb.Thumbnail.width;
  Alcotest.(check int) "height" 96 thumb.Thumbnail.height;
  Alcotest.(check bool) "pixels in range" true
    (Array.for_all (fun p -> p >= 0 && p <= 255) thumb.Thumbnail.pixels)

let test_thumbnail_small_image_untouched () =
  let img = Thumbnail.make_test_image ~width:100 ~height:50 ~seed:2 in
  let thumb = Thumbnail.generate img ~max_dim:128 in
  Alcotest.(check bool) "same image" true (thumb == img)

let test_thumbnail_preserves_mean_brightness () =
  (* a box filter must keep the average brightness roughly unchanged *)
  let img = Thumbnail.make_test_image ~width:512 ~height:512 ~seed:3 in
  let thumb = Thumbnail.generate img ~max_dim:64 in
  let mean pixels =
    float_of_int (Array.fold_left ( + ) 0 pixels)
    /. float_of_int (Array.length pixels)
  in
  let delta = Float.abs (mean img.Thumbnail.pixels -. mean thumb.Thumbnail.pixels) in
  Alcotest.(check bool) "brightness stable" true (delta < 4.0)

let test_thumbnail_latency_model () =
  let rng = Rng.create ~seed:9 in
  let spans =
    List.init 200 (fun _ ->
        Time.span_to_ms
          (Thumbnail.latency_model rng
             ~image_bytes:Thumbnail.default_image_bytes))
  in
  List.iter
    (fun ms ->
      Alcotest.(check bool) "sane latency" true (ms > 10.0 && ms < 5000.0))
    spans;
  let mean = List.fold_left ( +. ) 0.0 spans /. 200.0 in
  Alcotest.(check bool) "centres ~95ms" true (mean > 60.0 && mean < 160.0)

let test_thumbnail_variability_tightens () =
  let spread variability =
    let rng = Rng.create ~seed:10 in
    let spans =
      List.init 100 (fun _ ->
          Time.span_to_ms
            (Thumbnail.latency_model ~variability rng ~image_bytes:1_500_000))
    in
    List.fold_left Float.max 0.0 spans -. List.fold_left Float.min 1e9 spans
  in
  Alcotest.(check bool) "tight < loose" true (spread 0.01 < spread 1.0)

(* ------------------------------------------------------------------ *)
(* CPU burner                                                          *)
(* ------------------------------------------------------------------ *)

let test_primes () =
  Alcotest.(check int) "primes < 10" 4 (Cpu_burn.primes_below 10);
  Alcotest.(check int) "primes < 100" 25 (Cpu_burn.primes_below 100);
  Alcotest.(check int) "primes < 2" 0 (Cpu_burn.primes_below 2);
  Alcotest.check_raises "n < 2" (Invalid_argument "Cpu_burn.primes_below: n < 2")
    (fun () -> ignore (Cpu_burn.primes_below 1))

let test_events_per_period () =
  let rng = Rng.create ~seed:4 in
  let events = Cpu_burn.events_per_period rng ~period:(Time.span_ms 500.0) in
  Alcotest.(check bool) "plausible sysbench rate" true
    (events > 2000 && events < 3500)

(* ------------------------------------------------------------------ *)
(* Categories                                                          *)
(* ------------------------------------------------------------------ *)

let test_category_service_times () =
  Alcotest.(check int) "cat1 17us" 17_000
    (Time.span_to_ns (Category.service_time Category.Cat1));
  Alcotest.(check int) "cat2 1.5us" 1_500
    (Time.span_to_ns (Category.service_time Category.Cat2));
  Alcotest.(check int) "cat3 0.7us" 700
    (Time.span_to_ns (Category.service_time Category.Cat3))

let test_category_sampling_noise () =
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 100 do
    let ns =
      Time.span_to_ns (Category.sample_service_time Category.Cat1 rng)
    in
    Alcotest.(check bool) "within +-8%" true (ns >= 15_640 && ns <= 18_360)
  done

let test_category_run_real () =
  (match Category.run_real Category.Cat1 with
  | Category.Firewall_decision Firewall.Allow -> ()
  | Category.Firewall_decision Firewall.Deny ->
    Alcotest.fail "canned firewall input should be allowed"
  | Category.Nat_result _ | Category.Filter_matches _ ->
    Alcotest.fail "wrong outcome type");
  (match Category.run_real Category.Cat2 with
  | Category.Nat_result (Some _) -> ()
  | Category.Nat_result None -> Alcotest.fail "canned NAT input should match"
  | Category.Firewall_decision _ | Category.Filter_matches _ ->
    Alcotest.fail "wrong outcome type");
  match Category.run_real Category.Cat3 with
  | Category.Filter_matches n ->
    Alcotest.(check bool) "some matches" true (n > 0 && n < 3000)
  | Category.Firewall_decision _ | Category.Nat_result _ ->
    Alcotest.fail "wrong outcome type"

let () =
  Alcotest.run "horse_workload"
    [
      ( "packet",
        [
          Alcotest.test_case "ip roundtrip" `Quick test_ip_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_ip_rejects_malformed;
          Alcotest.test_case "make header" `Quick test_make_header;
        ] );
      ( "firewall",
        [
          Alcotest.test_case "prefix match" `Quick test_firewall_prefix_match;
          Alcotest.test_case "port condition" `Quick test_firewall_port_condition;
          Alcotest.test_case "protocol condition" `Quick
            test_firewall_protocol_condition;
          Alcotest.test_case "default deny" `Quick test_firewall_default_deny;
          Alcotest.test_case "/0 allows all" `Quick
            test_firewall_zero_prefix_allows_all;
          Alcotest.test_case "validation" `Quick test_firewall_validation;
        ] );
      ( "nat",
        [
          Alcotest.test_case "translates" `Quick test_nat_translates;
          Alcotest.test_case "no match" `Quick test_nat_no_match;
          Alcotest.test_case "rule replacement" `Quick test_nat_rule_replacement;
        ] );
      ( "filter",
        [
          Alcotest.test_case "basic" `Quick test_filter_basic;
          Alcotest.test_case "into == list" `Quick test_filter_into_matches_list;
          Alcotest.test_case "buffer guard" `Quick test_filter_buffer_guard;
        ] );
      ( "thumbnail",
        [
          Alcotest.test_case "downscales" `Quick test_thumbnail_downscales;
          Alcotest.test_case "small untouched" `Quick
            test_thumbnail_small_image_untouched;
          Alcotest.test_case "brightness stable" `Quick
            test_thumbnail_preserves_mean_brightness;
          Alcotest.test_case "latency model" `Quick test_thumbnail_latency_model;
          Alcotest.test_case "variability knob" `Quick
            test_thumbnail_variability_tightens;
        ] );
      ( "cpu_burn",
        [
          Alcotest.test_case "primes" `Quick test_primes;
          Alcotest.test_case "events per period" `Quick test_events_per_period;
        ] );
      ( "category",
        [
          Alcotest.test_case "service times" `Quick test_category_service_times;
          Alcotest.test_case "sampling noise" `Quick test_category_sampling_noise;
          Alcotest.test_case "run real" `Quick test_category_run_real;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_filter_sound_and_complete ] );
    ]
